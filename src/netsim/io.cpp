#include "netsim/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace surfnet::netsim {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + what);
}

std::string role_name(NodeRole role) {
  switch (role) {
    case NodeRole::User: return "user";
    case NodeRole::Switch: return "switch";
    case NodeRole::Server: return "server";
  }
  return "?";
}

NodeRole role_of(const std::string& name, int line) {
  if (name == "user") return NodeRole::User;
  if (name == "switch") return NodeRole::Switch;
  if (name == "server") return NodeRole::Server;
  fail(line, "unknown node role '" + name + "'");
}

std::vector<int> read_node_list(std::istringstream& ss, int line) {
  int count = 0;
  if (!(ss >> count) || count < 0) fail(line, "bad node-list count");
  std::vector<int> nodes(static_cast<std::size_t>(count));
  for (int& v : nodes) {
    if (!(ss >> v)) fail(line, "truncated node list");
    if (v < 0) fail(line, "negative node id in node list");
  }
  return nodes;
}

/// Reject records with extra fields: a typo that sneaks a value past the
/// parser would otherwise be silently dropped.
void require_line_consumed(std::istringstream& ss, int line) {
  std::string extra;
  if (ss >> extra) fail(line, "trailing garbage '" + extra + "'");
}

void write_node_list(std::ostream& os, const std::vector<int>& nodes) {
  os << ' ' << nodes.size();
  for (int v : nodes) os << ' ' << v;
}

}  // namespace

void write_topology(std::ostream& os, const Topology& topology) {
  os << "surfnet-topology v1\n";
  for (int v = 0; v < topology.num_nodes(); ++v) {
    const auto& node = topology.node(v);
    os << "node " << v << ' ' << role_name(node.role) << ' '
       << node.storage_capacity << '\n';
  }
  os.precision(17);
  for (int e = 0; e < topology.num_fibers(); ++e) {
    const auto& f = topology.fiber(e);
    os << "fiber " << f.a << ' ' << f.b << ' ' << f.fidelity << ' '
       << f.entanglement_capacity << '\n';
  }
}

Topology read_topology(std::istream& is) {
  std::string line;
  int line_no = 1;
  if (!std::getline(is, line) || line != "surfnet-topology v1")
    fail(line_no, "expected header 'surfnet-topology v1'");
  std::vector<Node> nodes;
  std::vector<Fiber> fibers;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "node") {
      int id = -1, capacity = 0;
      std::string role;
      if (!(ss >> id >> role >> capacity)) fail(line_no, "bad node record");
      require_line_consumed(ss, line_no);
      if (id != static_cast<int>(nodes.size()))
        fail(line_no, "node ids must be dense and ordered");
      if (capacity < 0)
        fail(line_no, "node " + std::to_string(id) +
                          " has negative storage capacity");
      if (!fibers.empty()) fail(line_no, "node record after fiber records");
      Node node;
      node.role = role_of(role, line_no);
      node.storage_capacity = capacity;
      nodes.push_back(node);
    } else if (tag == "fiber") {
      Fiber f;
      if (!(ss >> f.a >> f.b >> f.fidelity >> f.entanglement_capacity))
        fail(line_no, "bad fiber record");
      require_line_consumed(ss, line_no);
      for (const int endpoint : {f.a, f.b})
        if (endpoint < 0 || endpoint >= static_cast<int>(nodes.size()))
          fail(line_no, "fiber endpoint " + std::to_string(endpoint) +
                            " is not a declared node");
      if (f.a == f.b)
        fail(line_no,
             "fiber is a self-loop at node " + std::to_string(f.a));
      if (f.fidelity < 0.0 || f.fidelity > 1.0)
        fail(line_no, "fiber fidelity outside [0, 1]");
      if (f.entanglement_capacity < 0)
        fail(line_no, "fiber has negative entanglement capacity");
      for (const auto& other : fibers)
        if ((other.a == f.a && other.b == f.b) ||
            (other.a == f.b && other.b == f.a))
          fail(line_no, "duplicate fiber between " + std::to_string(f.a) +
                            " and " + std::to_string(f.b));
      fibers.push_back(f);
    } else {
      fail(line_no, "unknown record '" + tag + "'");
    }
  }
  return Topology(std::move(nodes), std::move(fibers));
}

void write_schedule(std::ostream& os, const Schedule& schedule) {
  os << "surfnet-schedule v1\n";
  os << "requested " << schedule.requested_codes << '\n';
  for (const auto& s : schedule.scheduled) {
    os << "request " << s.request_index << ' ' << s.codes << ' '
       << s.code_distance << " support";
    write_node_list(os, s.support_path);
    os << " core";
    write_node_list(os, s.core_path);
    os << " ec";
    write_node_list(os, s.ec_servers);
    os << '\n';
  }
}

Schedule read_schedule(std::istream& is) {
  std::string line;
  int line_no = 1;
  if (!std::getline(is, line) || line != "surfnet-schedule v1")
    fail(line_no, "expected header 'surfnet-schedule v1'");
  Schedule schedule;
  bool saw_requested = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "requested") {
      if (saw_requested) fail(line_no, "duplicate requested record");
      if (!(ss >> schedule.requested_codes))
        fail(line_no, "bad requested record");
      require_line_consumed(ss, line_no);
      if (schedule.requested_codes < 0)
        fail(line_no, "negative requested code count");
      saw_requested = true;
    } else if (tag == "request") {
      ScheduledRequest s;
      std::string keyword;
      if (!(ss >> s.request_index >> s.codes >> s.code_distance >> keyword) ||
          keyword != "support")
        fail(line_no, "bad request record");
      if (s.request_index < 0) fail(line_no, "negative request index");
      if (s.codes < 0) fail(line_no, "negative code count");
      if (s.code_distance < 0) fail(line_no, "negative code distance");
      s.support_path = read_node_list(ss, line_no);
      if (!(ss >> keyword) || keyword != "core")
        fail(line_no, "expected 'core'");
      s.core_path = read_node_list(ss, line_no);
      if (!(ss >> keyword) || keyword != "ec")
        fail(line_no, "expected 'ec'");
      s.ec_servers = read_node_list(ss, line_no);
      require_line_consumed(ss, line_no);
      schedule.scheduled.push_back(std::move(s));
    } else {
      fail(line_no, "unknown record '" + tag + "'");
    }
  }
  return schedule;
}

std::string topology_to_string(const Topology& topology) {
  std::ostringstream os;
  write_topology(os, topology);
  return os.str();
}

Topology topology_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_topology(is);
}

std::string schedule_to_string(const Schedule& schedule) {
  std::ostringstream os;
  write_schedule(os, schedule);
  return os.str();
}

Schedule schedule_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_schedule(is);
}

}  // namespace surfnet::netsim
