#pragma once

// Noise bookkeeping for the two SurfNet channels (paper Sec. V-A).
//
// Fidelity multiplies along a path, so the scheduler works with additive
// noise mu = ln(1 / gamma). The plain channel accumulates the full path
// noise on Support qubits and loses photons (erasures); the
// entanglement-based channel halves the effective Core noise thanks to
// entanglement purification, and loses nothing (failed attempts are simply
// regenerated before teleportation).

#include <cmath>
#include <vector>

#include "netsim/topology.h"

namespace surfnet::netsim {

/// mu = ln(1 / gamma).
inline double noise_of_fidelity(double gamma) {
  return std::log(1.0 / std::max(gamma, 1e-9));
}

/// gamma = exp(-mu).
inline double fidelity_of_noise(double mu) { return std::exp(-mu); }

/// Sum of fiber noises along a node path (consecutive nodes must be
/// adjacent; throws otherwise).
double path_noise(const Topology& topology, const std::vector<int>& path);

/// Per-qubit Pauli error probability after accumulating noise mu:
/// p = 1 - exp(-mu), the complement of the residual fidelity.
inline double pauli_rate_of_noise(double mu) {
  return 1.0 - std::exp(-mu);
}

/// Probability a Support photon is lost (erased) over `hops` fibers with
/// per-hop loss probability `loss`.
inline double erasure_rate(double loss, int hops) {
  return 1.0 - std::pow(1.0 - loss, hops);
}

}  // namespace surfnet::netsim
