#pragma once

// Round-based simulation of SurfNet's online execution (paper Sec. V-B).
//
// All scheduled requests run concurrently in discrete time slots and
// contend for the shared per-fiber entanglement pools:
//   * Support parts travel one fiber per slot through the plain channels,
//     losing photons (erasures) with a per-hop probability;
//   * Core parts move opportunistically through the entanglement-based
//     channels: a code jumps up to two consecutive fibers (the paper's
//     fixed minimum segment) as soon as every fiber of the segment has
//     enough prepared pairs, consuming one pair per Core qubit per fiber;
//   * at every scheduled EC server — and finally at the destination — the
//     complete surface code is assembled and *actually decoded*: noise
//     accumulated since the previous correction is sampled onto the code's
//     qubits (Core rates halved by purification), missing photons are
//     marked as erasures, and the configured decoder runs. A logical error
//     silently corrupts the communication; decoding resets the noise.
//
// Fidelity is the fraction of delivered codes with no logical error at any
// correction point; latency is the average number of slots per code.
//
// The five network designs of the paper's evaluation (Fig. 7) select a
// Simulator implementation through make_simulator; SurfNet and Raw share
// the surface-code simulator (a Raw request simply has no Core path),
// the purification designs share the bare-qubit teleportation simulator.
//
// Observability: SimulationParams carries an obs::Sink. With a trace sink
// attached the simulator emits per-slot events (entanglement-pool levels,
// segment jumps, decode invocations with erasure/syndrome counts and
// logical-error verdicts, fiber failures and recoveries, deliveries and
// timeouts — see obs/trace.h for the schema); with a metrics registry it
// feeds "sim.*" counters and histograms. The null sink adds one branch
// per site and keeps the default path bitwise-identical.
//
// Fault injection & recovery: SimulationParams::faults is a deterministic
// FaultPlan executed by a FaultInjector (netsim/faults.h) — a fixed
// (seed, plan) pair replays bitwise on any thread count — and
// SimulationParams::recovery selects how broken or starved routes are
// repaired (netsim/recovery.h): local detours, bounded swap retries with
// exponential backoff, escalation to a full re-route, per-code timeout
// budgets. Every injected fault and recovery decision is reported through
// the sink.

#include <memory>
#include <string_view>

#include "decoder/decoder.h"
#include "netsim/entanglement.h"
#include "netsim/faults.h"
#include "netsim/recovery.h"
#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "obs/sink.h"
#include "qec/error_model.h"
#include "util/rng.h"

namespace surfnet::netsim {

/// The five network designs compared in Fig. 7.
enum class NetworkDesign {
  SurfNet,
  Raw,
  Purification1,
  Purification2,
  Purification9,
};

std::string_view to_string(NetworkDesign design);

/// Purified pairs consumed per hop beyond the teleportation pair
/// (0 for the non-purification designs).
int purification_rounds(NetworkDesign design);

struct SimulationParams {
  int code_distance = 4;        ///< paper's 25-qubit example code
  double loss_per_hop = 0.08;   ///< plain-channel photon loss per fiber
  /// Fraction of a fiber's infidelity that manifests as Pauli noise on a
  /// transiting qubit (the rest is photon loss, modelled separately):
  /// p = 1 - exp(-noise_scale * mu).
  double noise_scale = 0.05;
  /// Residual operation infidelity per teleportation event (Bell
  /// measurement + Pauli frame correction). Entanglement purification
  /// cannot remove it; SurfNet's error correction can, and SurfNet's
  /// opportunistic segments teleport once per multi-fiber jump while
  /// purification networks teleport the bare message at every hop.
  double teleport_op_noise = 0.02;
  /// Residual noise fraction left on Core qubits by entanglement
  /// purification. The scheduler's Eq. (6) accounts a conservative 1/2;
  /// the recurrence formula rho' = r1 r2/(r1 r2 + (1-r1)(1-r2)) suppresses
  /// infidelity roughly quadratically, so the executed channel does better.
  double purification_factor = 0.25;
  double entanglement_rate = 4.0;  ///< expected new pairs per slot per fiber
  int opportunistic_segment = 2;   ///< paper: minimum movement distance
  /// Probability that one entanglement-swap/teleportation attempt succeeds;
  /// a failed segment jump wastes the consumed pairs (paper Sec. IV-B:
  /// "the process of entanglement is highly probabilistic").
  double swap_success = 1.0;
  /// Online-execution fault schedule (netsim/faults.h): scripted events
  /// plus stochastic fiber cuts, correlated multi-link failures, node
  /// outages, entanglement-rate degradation windows and decode-latency
  /// spikes. An empty plan costs one branch per slot.
  FaultPlan faults;
  /// What the control plane does when a route breaks or starves
  /// (netsim/recovery.h). The default policy reproduces the historical
  /// behavior: local reroutes, no backoff, no escalation, no per-code
  /// budget. Set `recovery.local_reroute = false` to hold qubits in
  /// error-mitigation circuits until a failed fiber returns instead of
  /// detouring around it (the retired `enable_recovery = false` knob).
  RecoveryPolicy recovery;
  int max_slots = 20000;        ///< safety cap; starved codes time out
  qec::PauliChannel channel = qec::PauliChannel::IndependentXZ;
  /// Observability handle (metrics + trace); null = no instrumentation.
  obs::Sink sink{};
};

/// Why one simulated code ended the way it did.
enum class CodeOutcome {
  Succeeded,     ///< delivered, no logical error at any correction point
  LogicalError,  ///< delivered, but silently corrupted along the way
  TimedOut,      ///< still in flight when the simulation hit max_slots
};

std::string_view to_string(CodeOutcome outcome);

/// Per-code record of one simulated communication, appended as codes
/// finish (delivery or, at the end of the run, timeout).
struct CodeRecord {
  int request = -1;    ///< ScheduledRequest::request_index
  int slots = 0;       ///< in-flight slots (censored at max_slots on timeout)
  int corrections = 0; ///< decode invocations (EC servers + final readout)
  CodeOutcome outcome = CodeOutcome::TimedOut;
};

struct SimulationResult {
  int codes_scheduled = 0;
  int codes_delivered = 0;  ///< completed before max_slots
  int codes_succeeded = 0;  ///< delivered with no logical error
  double total_latency = 0.0;
  /// One record per launched code (delivered or timed out); codes never
  /// launched before max_slots have no record. Totals above are exactly
  /// the tallies of these records plus the never-launched remainder.
  std::vector<CodeRecord> codes;

  /// Paper Sec. VI-C: success rate of executed communications.
  double fidelity() const {
    return codes_delivered > 0
               ? static_cast<double>(codes_succeeded) / codes_delivered
               : 0.0;
  }
  double avg_latency() const {
    return codes_delivered > 0 ? total_latency / codes_delivered : 0.0;
  }
};

/// Simulate a SurfNet (or Raw, when a request's core_path is empty)
/// schedule. Raw requests send every qubit through the plain channel and
/// consume no entanglement.
SimulationResult simulate_surfnet(const Topology& topology,
                                  const Schedule& schedule,
                                  const SimulationParams& params,
                                  const decoder::Decoder& decoder,
                                  util::Rng& rng);

/// Simulate a purification-based network (paper's "Purification N=1,2,9"
/// benchmarks): each message is a bare qubit teleported hop by hop, each
/// hop consuming 1 + extra_pairs entangled pairs; the message survives with
/// the product of the purified link fidelities.
SimulationResult simulate_purification(const Topology& topology,
                                       const Schedule& schedule,
                                       int extra_pairs,
                                       const SimulationParams& params,
                                       util::Rng& rng);

/// Unified execution interface over the two simulation models. A Simulator
/// is stateless across runs; the same instance may execute many schedules.
class Simulator {
 public:
  virtual ~Simulator() = default;
  virtual SimulationResult run(const Topology& topology,
                               const Schedule& schedule,
                               const SimulationParams& params,
                               util::Rng& rng) const = 0;
  virtual std::string_view name() const = 0;
};

/// Surface-code transfer (SurfNet and Raw designs). The decoder is
/// borrowed and must outlive the simulator.
class SurfNetSimulator final : public Simulator {
 public:
  explicit SurfNetSimulator(const decoder::Decoder& decoder)
      : decoder_(&decoder) {}
  SimulationResult run(const Topology& topology, const Schedule& schedule,
                       const SimulationParams& params,
                       util::Rng& rng) const override {
    return simulate_surfnet(topology, schedule, params, *decoder_, rng);
  }
  std::string_view name() const override { return "surfnet"; }

 private:
  const decoder::Decoder* decoder_;
};

/// Hop-by-hop teleportation of bare qubits over purified pairs
/// (Purification N=1,2,9 designs).
class PurificationSimulator final : public Simulator {
 public:
  explicit PurificationSimulator(int extra_pairs)
      : extra_pairs_(extra_pairs) {}
  SimulationResult run(const Topology& topology, const Schedule& schedule,
                       const SimulationParams& params,
                       util::Rng& rng) const override {
    return simulate_purification(topology, schedule, extra_pairs_, params,
                                 rng);
  }
  std::string_view name() const override { return "purification"; }
  int extra_pairs() const { return extra_pairs_; }

 private:
  int extra_pairs_;
};

/// The simulator a network design executes on. The decoder is borrowed by
/// the surface-code designs (SurfNet, Raw) and ignored by the rest.
std::unique_ptr<Simulator> make_simulator(NetworkDesign design,
                                          const decoder::Decoder& decoder);

}  // namespace surfnet::netsim
