#pragma once

// Plain-text serialization of topologies and schedules, so that generated
// networks and routing decisions can be saved, diffed, shared, and
// re-simulated exactly. The format is line-oriented and versioned:
//
//   surfnet-topology v1
//   node <id> user|switch|server <storage_capacity>
//   fiber <a> <b> <fidelity> <entanglement_capacity>
//
//   surfnet-schedule v1
//   requested <total_codes>
//   request <index> <codes> <distance> support <n> <v...> core <n> <v...>
//           ec <n> <v...>
//
// Writers emit deterministic output; readers validate and throw
// std::invalid_argument with a line number on malformed input: unknown or
// truncated records, trailing garbage, node records after fiber records,
// dangling or self-loop fiber endpoints, duplicate fibers, negative
// capacities/counts, out-of-range fidelities.

#include <iosfwd>
#include <string>

#include "netsim/schedule.h"
#include "netsim/topology.h"

namespace surfnet::netsim {

void write_topology(std::ostream& os, const Topology& topology);
Topology read_topology(std::istream& is);

void write_schedule(std::ostream& os, const Schedule& schedule);
Schedule read_schedule(std::istream& is);

/// String conveniences.
std::string topology_to_string(const Topology& topology);
Topology topology_from_string(const std::string& text);
std::string schedule_to_string(const Schedule& schedule);
Schedule schedule_from_string(const std::string& text);

}  // namespace surfnet::netsim
