#pragma once

// Convenience wiring for command-line tools: turn `--metrics-out FILE` /
// `--trace-out FILE` into a live Sink. The session owns the registry and
// the JSONL writer; finish() (or the destructor) writes the metrics JSON
// document and closes the trace stream. Empty paths disable the
// corresponding plane, so an all-defaults FileSession hands out the null
// sink and costs nothing.

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace surfnet::obs {

class FileSession {
 public:
  FileSession() = default;
  /// Either path may be empty (that plane stays disabled). "-" streams to
  /// stdout.
  FileSession(const std::string& metrics_path, const std::string& trace_path);
  ~FileSession() { finish(); }
  FileSession(const FileSession&) = delete;
  FileSession& operator=(const FileSession&) = delete;

  Sink sink();
  MetricsRegistry& metrics() { return metrics_; }

  /// Write the metrics JSON (if a metrics path was given) and close the
  /// trace stream. Idempotent.
  void finish();

 private:
  MetricsRegistry metrics_;
  std::string metrics_path_;
  std::unique_ptr<JsonlTraceWriter> trace_;
  bool metrics_enabled_ = false;
  bool finished_ = false;
};

}  // namespace surfnet::obs
