#pragma once

// Lightweight observability handle threaded through the params structs of
// the simulator, the decoder trial engine, and the routing solvers. A Sink
// is two raw, non-owning pointers; the default (null) sink makes every
// instrumentation site a single predictable branch, so the uninstrumented
// hot paths stay bitwise-identical and allocation-free.
//
// Ownership and lifetime are the caller's: whoever builds the registry /
// trace sink keeps them alive across the instrumented call. Instrumented
// code includes obs/metrics.h and obs/trace.h from its .cpp only; public
// headers need nothing beyond this file.

namespace surfnet::obs {

class MetricsRegistry;
class TraceSink;

struct Sink {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;

  bool enabled() const { return metrics != nullptr || trace != nullptr; }
  bool tracing() const { return trace != nullptr; }
};

}  // namespace surfnet::obs
