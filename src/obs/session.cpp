#include "obs/session.h"

#include <cstdio>
#include <stdexcept>

namespace surfnet::obs {

FileSession::FileSession(const std::string& metrics_path,
                         const std::string& trace_path)
    : metrics_path_(metrics_path), metrics_enabled_(!metrics_path.empty()) {
  if (!trace_path.empty()) {
    if (trace_path == "-")
      trace_ = std::make_unique<JsonlTraceWriter>(stdout);
    else
      trace_ = std::make_unique<JsonlTraceWriter>(trace_path);
  }
}

Sink FileSession::sink() {
  Sink s;
  if (metrics_enabled_) s.metrics = &metrics_;
  if (trace_) s.trace = trace_.get();
  return s;
}

void FileSession::finish() {
  if (finished_) return;
  finished_ = true;
  trace_.reset();  // flush + close before the metrics summary lands
  if (!metrics_enabled_) return;
  const std::string json = metrics_.to_json();
  if (metrics_path_ == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
  if (!f)
    throw std::runtime_error("FileSession: cannot open " + metrics_path_);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace surfnet::obs
