#pragma once

// Trace plane of the observability layer: structured per-event records of
// what the simulator, the decoders, and the LP solver actually did,
// exported as stable-schema JSONL (one JSON object per line).
//
// Events are a single flat POD so that recording into a pre-grown
// TraceBuffer costs a few stores and no allocation at steady state. The
// field meaning per kind — and the exact JSONL key set, which the golden
// schema test pins — is:
//
//   pool         {"ev","trial","slot","pairs_total","pairs_min"}
//                per-slot entanglement inventory over all fibers
//   fiber_down   {"ev","trial","slot","fiber","until_slot"}
//   recovery     {"ev","trial","slot","request","channel"}
//                a reroute around a failed fiber; channel is
//                "support" or "core"
//   segment_jump {"ev","trial","slot","request","from_node","to_node",
//                 "fibers","success"}
//                an opportunistic multi-fiber move (success=false: the
//                swap failed and the consumed pairs were wasted)
//   decode       {"ev","trial","slot","request","node","ec","erasures",
//                 "syndromes","logical_error"}
//                one full decode at an EC server (ec=true) or at the
//                destination readout; erasures counts erased data qubits,
//                syndromes counts lit checks over both graphs
//   delivered    {"ev","trial","slot","request","slots","corrections",
//                 "outcome"}   outcome is "success" or "logical_error"
//   timeout      {"ev","trial","slot","request","slots"}
//                a code still in flight when the simulation hit max_slots,
//                or abandoned by a per-code recovery timeout budget
//   node_down    {"ev","trial","slot","node","until_slot"}
//                a switch/server outage (fault injection)
//   degraded     {"ev","trial","slot","fiber","until_slot","factor"}
//                an entanglement-source degradation window: the fiber's
//                pair-generation rate is multiplied by factor until
//                until_slot
//   decode_stall {"ev","trial","slot","until_slot"}
//                a decode-latency spike: corrections stall network-wide
//                until until_slot
//   retry        {"ev","trial","slot","request","channel","attempt",
//                 "backoff"}
//                a bounded recovery retry after a failed segment jump;
//                backoff is the exponential-backoff cooldown in slots
//   escalate     {"ev","trial","slot","request","channel","action"}
//                recovery escalated past local repair; action is
//                "reroute" (full re-route through the remaining barriers
//                succeeded) or "hold" (no live route; wait in place)
//   lp_solve     {"ev","trial","iterations","refactorizations",
//                 "warm_start","status","objective"}
//                status encodes routing::LpStatus: 0 optimal,
//                1 infeasible, 2 unbounded, 3 iteration limit
//   arrival      {"ev","trial","slot","request","src","dst","class"}
//                one open-loop workload request entering the system
//                (request ids are dense per run, class indexes the
//                workload's demand-class table)
//   admit        {"ev","trial","slot","request","codes","hops",
//                 "est_slots","source","distance"}
//                admission control accepted the request; source is
//                "greedy" (fast path), "warm" (warm-started LP assist)
//                or "cold" (shape-changing cold LP solve); distance is
//                the code distance the provider selected (0 = the
//                configuration default, adaptive selection disabled)
//   blocked      {"ev","trial","slot","request","reason"}
//                admission control rejected the request; reason is
//                "load" (admission cap / headroom shed), "capacity"
//                (no feasible route), "fidelity" (route under the
//                class fidelity floor) or "deadline" (estimated
//                delivery later than the class deadline)
//   depart       {"ev","trial","slot","request","latency"}
//                a request finished service and released its resources;
//                latency is delivery latency in slots
//
// "trial" is stamped by the trial engine when per-trial buffers are merged
// (deterministically, in trial order — so traces are bitwise-identical for
// any thread count); fields with value -1 ("trial" or "slot" outside any
// trial/slot context) are omitted from the JSONL line.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace surfnet::obs {

enum class EventKind : std::uint8_t {
  PoolLevel,
  FiberDown,
  Recovery,
  SegmentJump,
  Decode,
  Delivered,
  Timeout,
  NodeDown,
  Degraded,
  DecodeStall,
  Retry,
  Escalate,
  LpSolve,
  Arrival,
  Admit,
  Blocked,
  Depart,
};

std::string_view to_string(EventKind kind);

struct Event {
  EventKind kind = EventKind::PoolLevel;
  std::int32_t trial = -1;
  std::int32_t slot = -1;
  std::int32_t a = 0;  ///< meaning depends on kind (see header comment)
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
  double value = 0.0;
  bool flag = false;
  bool flag2 = false;
  /// Fifth int field, declared after the flags so the positional
  /// aggregate initializers of the earlier factories stay valid
  /// (trailing members value-initialize). Currently: admit's code
  /// distance.
  std::int32_t e = 0;

  static Event pool(int slot, int pairs_total, int pairs_min) {
    return {EventKind::PoolLevel, -1, slot, pairs_total, pairs_min,
            0,                    0,  0.0,  false,       false};
  }
  static Event fiber_down(int slot, int fiber, int until_slot) {
    return {EventKind::FiberDown, -1, slot, fiber, until_slot,
            0,                    0,  0.0,  false, false};
  }
  static Event recovery(int slot, int request, bool core_channel) {
    return {EventKind::Recovery, -1,  slot,  request, core_channel ? 1 : 0,
            0,                   0,   0.0,   false,   false};
  }
  static Event segment_jump(int slot, int request, int from_node,
                            int to_node, int fibers, bool success) {
    return {EventKind::SegmentJump, -1,     slot, request, from_node,
            to_node,                fibers, 0.0,  success, false};
  }
  static Event decode(int slot, int request, int node, bool ec, int erasures,
                      int syndromes, bool logical_error) {
    return {EventKind::Decode, -1,        slot, request,       node,
            erasures,          syndromes, 0.0,  logical_error, ec};
  }
  static Event delivered(int slot, int request, int slots, int corrections,
                         bool logical_error) {
    return {EventKind::Delivered, -1, slot, request,       slots,
            corrections,          0,  0.0,  logical_error, false};
  }
  static Event timeout(int slot, int request, int slots) {
    return {EventKind::Timeout, -1, slot,  request, slots,
            0,                  0,  0.0,   false,   false};
  }
  static Event node_down(int slot, int node, int until_slot) {
    return {EventKind::NodeDown, -1, slot,  node,  until_slot,
            0,                   0,  0.0,   false, false};
  }
  static Event degraded(int slot, int fiber, int until_slot, double factor) {
    return {EventKind::Degraded, -1, slot,   fiber, until_slot,
            0,                   0,  factor, false, false};
  }
  static Event decode_stall(int slot, int until_slot) {
    return {EventKind::DecodeStall, -1, slot,  until_slot, 0,
            0,                      0,  0.0,   false,      false};
  }
  static Event retry(int slot, int request, bool core_channel, int attempt,
                     int backoff) {
    return {EventKind::Retry, -1,      slot, request, core_channel ? 1 : 0,
            attempt,          backoff, 0.0,  false,   false};
  }
  static Event escalate(int slot, int request, bool core_channel,
                        bool rerouted) {
    return {EventKind::Escalate, -1, slot, request,  core_channel ? 1 : 0,
            0,                   0,  0.0,  rerouted, false};
  }
  static Event lp_solve(int iterations, int refactorizations, bool warm,
                        int status, double objective) {
    return {EventKind::LpSolve, -1,     -1,        iterations, refactorizations,
            status,             0,      objective, warm,       false};
  }
  static Event arrival(int slot, int request, int src, int dst,
                       int demand_class) {
    return {EventKind::Arrival, -1,  slot, request, src,
            dst,                demand_class, 0.0, false, false};
  }
  /// `source` is the AdmitSource enum value (see the header comment);
  /// `distance` is the code distance the provider selected (0 = the
  /// configuration default).
  static Event admit(int slot, int request, int codes, int hops,
                     int est_slots, int source, int distance) {
    return {EventKind::Admit, -1,        slot, request, codes,
            hops,             est_slots, static_cast<double>(source),
            false,            false,     distance};
  }
  /// `reason` is the BlockReason enum value (see the header comment).
  static Event blocked(int slot, int request, int reason) {
    return {EventKind::Blocked, -1, slot, request, reason,
            0,                  0,  0.0,  false,   false};
  }
  static Event depart(int slot, int request, int latency) {
    return {EventKind::Depart, -1, slot, request, latency,
            0,                 0,  0.0,  false,   false};
  }
};

/// One JSONL line (no trailing newline) with the kind's key set.
std::string to_jsonl(const Event& event);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const Event& event) = 0;
};

/// In-memory sink. Parallel engines give each trial its own buffer and
/// flush the buffers in trial order, which makes the combined trace
/// deterministic and thread-count invariant.
class TraceBuffer final : public TraceSink {
 public:
  void record(const Event& event) override { events_.push_back(event); }
  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Forward every event to `out` in recorded order, stamping `trial` into
  /// events that do not carry a trial id yet.
  void flush_to(TraceSink& out, std::int32_t trial) const;

 private:
  std::vector<Event> events_;
};

/// Streams events as JSONL to a file (owned) or a stdio stream (borrowed,
/// e.g. stdout).
class JsonlTraceWriter final : public TraceSink {
 public:
  explicit JsonlTraceWriter(const std::string& path);
  explicit JsonlTraceWriter(std::FILE* stream) : stream_(stream) {}
  ~JsonlTraceWriter() override;
  JsonlTraceWriter(const JsonlTraceWriter&) = delete;
  JsonlTraceWriter& operator=(const JsonlTraceWriter&) = delete;

  void record(const Event& event) override;
  std::int64_t events_written() const { return events_written_; }

 private:
  std::FILE* stream_ = nullptr;
  bool owned_ = false;
  std::int64_t events_written_ = 0;
};

}  // namespace surfnet::obs
