#pragma once

// Metrics plane of the observability layer: named counters, gauges,
// fixed-bucket histograms, and accumulated wall-clock timers, collected in
// a MetricsRegistry and exported as a stable-schema JSON document.
//
// Registries are single-threaded by design. Parallel engines give every
// worker (or every trial) its own registry and merge them in a fixed order
// afterwards: counter and histogram merges are integer sums, so the merged
// aggregates are exact and invariant under thread count; timer merges sum
// measured doubles in the same fixed order, so a given merge discipline is
// deterministic even though wall-clock values themselves vary run to run.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace surfnet::obs {

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// finite buckets; one implicit overflow bucket catches everything above
/// the last bound. counts.size() == bounds.size() + 1.
struct Histogram {
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;
  std::int64_t total = 0;
  double sum = 0.0;

  void observe(double value) {
    std::size_t b = 0;
    while (b < bounds.size() && value > bounds[b]) ++b;
    ++counts[b];
    ++total;
    sum += value;
  }
};

class MetricsRegistry {
 public:
  /// Add `delta` to a monotonic counter (created at zero on first use).
  void count(const std::string& name, std::int64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Set a gauge to the latest observed value.
  void gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  /// Observe a value into a fixed-bucket histogram. The bounds are fixed
  /// by the first call for a name; later calls reuse the existing buckets.
  void observe(const std::string& name, double value,
               const std::vector<double>& bounds);
  /// Accumulate measured seconds into a timer.
  void time(const std::string& name, double seconds) {
    timers_[name] += seconds;
  }

  /// Merge `other` into this registry: counters, histogram buckets, and
  /// timers add; gauges take the other registry's latest value. Histogram
  /// bucket layouts must agree for shared names.
  void merge(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && timers_.empty() &&
           histograms_.empty();
  }

  std::int64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  double gauge_value(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  double timer_seconds(const std::string& name) const {
    const auto it = timers_.find(name);
    return it == timers_.end() ? 0.0 : it->second;
  }
  const Histogram* histogram(const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  /// Stable-schema JSON export (keys sorted; schema_version bumps on any
  /// breaking change):
  ///   {"schema_version": 1, "counters": {...}, "gauges": {...},
  ///    "timers": {...}, "histograms": {name: {"bounds": [...],
  ///    "counts": [...], "total": N, "sum": S}}}
  std::string to_json() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, double> timers_;
  std::map<std::string, Histogram> histograms_;
};

/// RAII wall-clock timer scoped to a block; freely nestable (each scope
/// accumulates into its own name). A null registry makes it a no-op.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {
    if (registry_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (registry_)
      registry_->time(
          name_, std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace surfnet::obs
