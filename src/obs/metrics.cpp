#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace surfnet::obs {

namespace {

/// JSON number formatting: integers stay integral, doubles get enough
/// digits to round-trip, and non-finite values (JSON has none) are boxed
/// to +-1e308 so the export always parses.
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) value = value > 0 ? 1e308 : -1e308;
  char buf[32];
  if (value == static_cast<std::int64_t>(value) && std::abs(value) < 1e15)
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(value)));
  else
    std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void append_quoted(std::string& out, const std::string& name) {
  out += '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

void MetricsRegistry::observe(const std::string& name, double value,
                              const std::vector<double>& bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram h;
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(h)).first;
  }
  it->second.observe(value);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, value] : other.timers_) timers_[name] += value;
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
      continue;
    }
    Histogram& mine = it->second;
    if (mine.bounds != h.bounds)
      throw std::invalid_argument(
          "MetricsRegistry::merge: histogram bucket layouts differ for '" +
          name + "'");
    for (std::size_t b = 0; b < h.counts.size(); ++b)
      mine.counts[b] += h.counts[b];
    mine.total += h.total;
    mine.sum += h.sum;
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"schema_version\": 1";

  const auto open_section = [&](const char* name) {
    out += ", \"";
    out += name;
    out += "\": {";
  };

  open_section("counters");
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": ";
    append_number(out, static_cast<double>(value));
  }
  out += '}';

  open_section("gauges");
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": ";
    append_number(out, value);
  }
  out += '}';

  open_section("timers");
  first = true;
  for (const auto& [name, value] : timers_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": ";
    append_number(out, value);
  }
  out += '}';

  open_section("histograms");
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b) out += ", ";
      append_number(out, h.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b) out += ", ";
      append_number(out, static_cast<double>(h.counts[b]));
    }
    out += "], \"total\": ";
    append_number(out, static_cast<double>(h.total));
    out += ", \"sum\": ";
    append_number(out, h.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace surfnet::obs
