#include "obs/trace.h"

#include <cmath>
#include <stdexcept>

namespace surfnet::obs {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::PoolLevel: return "pool";
    case EventKind::FiberDown: return "fiber_down";
    case EventKind::Recovery: return "recovery";
    case EventKind::SegmentJump: return "segment_jump";
    case EventKind::Decode: return "decode";
    case EventKind::Delivered: return "delivered";
    case EventKind::Timeout: return "timeout";
    case EventKind::NodeDown: return "node_down";
    case EventKind::Degraded: return "degraded";
    case EventKind::DecodeStall: return "decode_stall";
    case EventKind::Retry: return "retry";
    case EventKind::Escalate: return "escalate";
    case EventKind::LpSolve: return "lp_solve";
    case EventKind::Arrival: return "arrival";
    case EventKind::Admit: return "admit";
    case EventKind::Blocked: return "blocked";
    case EventKind::Depart: return "depart";
  }
  return "?";
}

namespace {

void append_int(std::string& out, const char* key, std::int64_t value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, ",\"%s\":%lld", key,
                static_cast<long long>(value));
  out += buf;
}

void append_bool(std::string& out, const char* key, bool value) {
  out += ",\"";
  out += key;
  out += value ? "\":true" : "\":false";
}

void append_double(std::string& out, const char* key, double value) {
  if (!std::isfinite(value)) value = value > 0 ? 1e308 : -1e308;
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.17g", key, value);
  out += buf;
}

void append_str(std::string& out, const char* key, std::string_view value) {
  out += ",\"";
  out += key;
  out += "\":\"";
  out += value;
  out += '"';
}

}  // namespace

std::string to_jsonl(const Event& event) {
  std::string out = "{\"ev\":\"";
  out += to_string(event.kind);
  out += '"';
  if (event.trial >= 0) append_int(out, "trial", event.trial);
  if (event.slot >= 0) append_int(out, "slot", event.slot);
  switch (event.kind) {
    case EventKind::PoolLevel:
      append_int(out, "pairs_total", event.a);
      append_int(out, "pairs_min", event.b);
      break;
    case EventKind::FiberDown:
      append_int(out, "fiber", event.a);
      append_int(out, "until_slot", event.b);
      break;
    case EventKind::Recovery:
      append_int(out, "request", event.a);
      append_str(out, "channel", event.b ? "core" : "support");
      break;
    case EventKind::SegmentJump:
      append_int(out, "request", event.a);
      append_int(out, "from_node", event.b);
      append_int(out, "to_node", event.c);
      append_int(out, "fibers", event.d);
      append_bool(out, "success", event.flag);
      break;
    case EventKind::Decode:
      append_int(out, "request", event.a);
      append_int(out, "node", event.b);
      append_bool(out, "ec", event.flag2);
      append_int(out, "erasures", event.c);
      append_int(out, "syndromes", event.d);
      append_bool(out, "logical_error", event.flag);
      break;
    case EventKind::Delivered:
      append_int(out, "request", event.a);
      append_int(out, "slots", event.b);
      append_int(out, "corrections", event.c);
      append_str(out, "outcome", event.flag ? "logical_error" : "success");
      break;
    case EventKind::Timeout:
      append_int(out, "request", event.a);
      append_int(out, "slots", event.b);
      break;
    case EventKind::NodeDown:
      append_int(out, "node", event.a);
      append_int(out, "until_slot", event.b);
      break;
    case EventKind::Degraded:
      append_int(out, "fiber", event.a);
      append_int(out, "until_slot", event.b);
      append_double(out, "factor", event.value);
      break;
    case EventKind::DecodeStall:
      append_int(out, "until_slot", event.a);
      break;
    case EventKind::Retry:
      append_int(out, "request", event.a);
      append_str(out, "channel", event.b ? "core" : "support");
      append_int(out, "attempt", event.c);
      append_int(out, "backoff", event.d);
      break;
    case EventKind::Escalate:
      append_int(out, "request", event.a);
      append_str(out, "channel", event.b ? "core" : "support");
      append_str(out, "action", event.flag ? "reroute" : "hold");
      break;
    case EventKind::LpSolve:
      append_int(out, "iterations", event.a);
      append_int(out, "refactorizations", event.b);
      append_bool(out, "warm_start", event.flag);
      append_int(out, "status", event.c);
      append_double(out, "objective", event.value);
      break;
    case EventKind::Arrival:
      append_int(out, "request", event.a);
      append_int(out, "src", event.b);
      append_int(out, "dst", event.c);
      append_int(out, "class", event.d);
      break;
    case EventKind::Admit: {
      append_int(out, "request", event.a);
      append_int(out, "codes", event.b);
      append_int(out, "hops", event.c);
      append_int(out, "est_slots", event.d);
      // Encoding shared with netsim::AdmitSource (0 greedy, 1 warm, 2 cold).
      const int source = static_cast<int>(event.value);
      append_str(out, "source",
                 source == 0 ? "greedy" : (source == 1 ? "warm" : "cold"));
      append_int(out, "distance", event.e);
      break;
    }
    case EventKind::Blocked: {
      append_int(out, "request", event.a);
      // Encoding shared with netsim::BlockReason (0 load, 1 capacity,
      // 2 fidelity, 3 deadline).
      static constexpr std::string_view kReasons[] = {"load", "capacity",
                                                      "fidelity", "deadline"};
      const int reason = event.b >= 0 && event.b < 4 ? event.b : 1;
      append_str(out, "reason", kReasons[reason]);
      break;
    }
    case EventKind::Depart:
      append_int(out, "request", event.a);
      append_int(out, "latency", event.b);
      break;
  }
  out += '}';
  return out;
}

void TraceBuffer::flush_to(TraceSink& out, std::int32_t trial) const {
  for (const Event& event : events_) {
    if (event.trial >= 0) {
      out.record(event);
      continue;
    }
    Event stamped = event;
    stamped.trial = trial;
    out.record(stamped);
  }
}

JsonlTraceWriter::JsonlTraceWriter(const std::string& path)
    : stream_(std::fopen(path.c_str(), "w")), owned_(true) {
  if (!stream_)
    throw std::runtime_error("JsonlTraceWriter: cannot open " + path);
}

JsonlTraceWriter::~JsonlTraceWriter() {
  if (stream_ && owned_) std::fclose(stream_);
}

void JsonlTraceWriter::record(const Event& event) {
  const std::string line = to_jsonl(event);
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fputc('\n', stream_);
  ++events_written_;
}

}  // namespace surfnet::obs
