#pragma once

// Exact maximum-likelihood decoder by exhaustive coset enumeration.
//
// For small codes (d <= 3: 13 data qubits, 2^13 error configurations per
// decoding graph) the decoding problem can be solved exactly: enumerate
// every error configuration, keep the ones reproducing the observed
// syndrome, split them by homology class (the parity of their overlap with
// the lattice's logical cut), and pick the class with the larger total
// probability. That is maximum-likelihood decoding of the *class* —
// strictly optimal for the success metric used throughout this repo
// (evaluate_correction tests the class of error + correction, not the
// exact configuration). No approximate decoder can beat it on expected
// logical-error rate, which is what the differential tests assert against
// SurfNet/Union-Find/MWPM; on pure erasure noise the peeling decoder must
// *match* it exactly (Delfosse-Zemor: peeling is ML on erasures).
//
// The enumeration is exponential in the edge count, so graphs beyond 20
// edges (d <= 3 in practice) or 63 measurement vertices are rejected with
// an unconditional contract FATAL (util::contract_fail): the masks would
// overflow and silently return wrong answers, so even Release builds —
// where SURFNET_EXPECTS compiles out — abort with a clear report instead.
// Tests catch it as util::ContractViolation via ScopedContractHandler.
// For exact ML above d = 3 on the erasure channel use decoder/erasure_ml.

#include "decoder/decoder.h"
#include "qec/code_lattice.h"

namespace surfnet::decoder {

/// Outcome of one exact ML decode.
struct MlDecision {
  /// Representative correction: the single most likely configuration of
  /// the winning class (its syndrome equals the input syndrome).
  std::vector<char> correction;
  /// Total probability of the syndrome-compatible configurations per
  /// homology class, indexed by logical-cut parity (0 = trivial class).
  double class_prob[2] = {0.0, 0.0};
  int chosen_class = 0;  ///< argmax of class_prob (ties pick class 0)
};

/// Exact ML decode of one graph of `lattice`. `input.graph` must be
/// lattice.graph(kind) (std::invalid_argument otherwise). A graph too
/// large to enumerate (> 20 edges or > 63 measurement vertices) is a
/// contract FATAL in every build type; std::logic_error when no
/// configuration reproduces the syndrome (impossible for valid syndromes).
MlDecision decode_ml(const qec::CodeLattice& lattice, qec::GraphKind kind,
                     const DecodeInput& input);

/// Decoder-interface adapter over decode_ml. The graph kind of each call
/// is resolved by comparing input.graph against the lattice's two graphs,
/// so the adapter slots into decode_sample/run_code_trial unchanged.
class ExhaustiveMLDecoder final : public Decoder {
 public:
  /// The lattice is borrowed and must outlive the decoder. Contract FATAL
  /// when either decoding graph exceeds the enumeration caps.
  explicit ExhaustiveMLDecoder(const qec::CodeLattice& lattice);

  std::vector<char> decode(const DecodeInput& input) const override;
  std::string_view name() const override { return "ExhaustiveML"; }

 private:
  const qec::CodeLattice* lattice_;
};

}  // namespace surfnet::decoder
