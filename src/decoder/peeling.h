#pragma once

// Peeling decoder (Delfosse-Zemor, paper ref. [39]): linear-time maximum
// likelihood decoding over a known erased region. Given a subgraph (the
// "region": erased edges plus edges grown by a cluster decoder) in which
// every connected component either has even syndrome parity or touches a
// boundary vertex, the peeler builds a spanning forest rooted at boundary
// vertices and peels leaf edges inward, emitting a correction that exactly
// reproduces the syndrome.

#include <vector>

#include "qec/graph.h"

namespace surfnet::decoder {

/// Reusable scratch buffers for peel_correction. Buffers are sized on
/// first use and keep their capacity across calls, so steady-state peeling
/// performs no heap allocations.
struct PeelWorkspace {
  struct TreeEdge {
    int edge;
    int parent;
    int child;
  };
  std::vector<char> visited;
  std::vector<char> syndrome;  ///< mutable copy of the input bitmap
  std::vector<TreeEdge> forest;
  std::vector<int> stack;
  std::vector<char> correction;
  /// Scratch of check_peel_invariants (SURFNET_CHECKS); owned by the
  /// workspace so the validated decode path stays allocation-free at
  /// steady state.
  std::vector<char> dbg_parity;
};

/// Peel a correction out of `region`. `syndrome` is a bitmap over real
/// vertices; every syndrome vertex must lie inside the region and every
/// region component must be matchable (even parity or boundary-touching),
/// otherwise std::logic_error is thrown.
std::vector<char> peel_correction(const qec::DecodingGraph& graph,
                                  const std::vector<char>& region,
                                  std::vector<char> syndrome);

/// Allocation-free variant: the correction is written into (and returned
/// from) `ws.correction`.
const std::vector<char>& peel_correction(const qec::DecodingGraph& graph,
                                         const std::vector<char>& region,
                                         const std::vector<char>& syndrome,
                                         PeelWorkspace& ws);

}  // namespace surfnet::decoder
