#pragma once

// Peeling decoder (Delfosse-Zemor, paper ref. [39]): linear-time maximum
// likelihood decoding over a known erased region. Given a subgraph (the
// "region": erased edges plus edges grown by a cluster decoder) in which
// every connected component either has even syndrome parity or touches a
// boundary vertex, the peeler builds a spanning forest rooted at boundary
// vertices and peels leaf edges inward, emitting a correction that exactly
// reproduces the syndrome.

#include <vector>

#include "qec/graph.h"

namespace surfnet::decoder {

/// Peel a correction out of `region`. `syndrome` is a bitmap over real
/// vertices; every syndrome vertex must lie inside the region and every
/// region component must be matchable (even parity or boundary-touching),
/// otherwise std::logic_error is thrown.
std::vector<char> peel_correction(const qec::DecodingGraph& graph,
                                  const std::vector<char>& region,
                                  std::vector<char> syndrome);

}  // namespace surfnet::decoder
