#pragma once

// Pure-erasure decoder (Delfosse-Zemor, paper ref. [39]): maximum
// likelihood and linear time over the quantum erasure channel — the
// regime where all of a code's damage comes from known photon losses.
// It peels directly over the erased region without any cluster growth, so
// it requires every syndrome to be explainable by erasures alone; decoding
// a syndrome caused by a Pauli error outside the erased region throws.
// Use the Union-Find or SurfNet decoders for mixed noise.

#include "decoder/decoder.h"

namespace surfnet::decoder {

class ErasureDecoder final : public Decoder {
 public:
  /// Precondition: the syndrome is confined to the erased region
  /// (erasure-only noise). Throws std::logic_error otherwise.
  std::vector<char> decode(const DecodeInput& input) const override;
  const std::vector<char>& decode(const DecodeInput& input,
                                  DecodeWorkspace& ws) const override;
  std::string_view name() const override { return "Erasure"; }
};

}  // namespace surfnet::decoder
