#include "decoder/erasure_ml.h"

#include <stdexcept>

#include "decoder/workspace.h"
#include "util/contracts.h"

namespace surfnet::decoder {

const std::vector<char>& decode_erasure_ml(const qec::DecodingGraph& graph,
                                           const std::vector<char>& cut_edges,
                                           const std::vector<char>& erased,
                                           const std::vector<char>& syndrome,
                                           ErasureMlWorkspace& ws,
                                           ErasureMlInfo* info) {
  SURFNET_EXPECTS(cut_edges.size() == graph.num_edges(),
                  "cut bitmap covers %zu of %zu edges", cut_edges.size(),
                  graph.num_edges());
  if (erased.size() != graph.num_edges())
    throw std::invalid_argument("erasure_ml: erased size mismatch");
  if (syndrome.size() != static_cast<std::size_t>(graph.num_real_vertices()))
    throw std::invalid_argument("erasure_ml: syndrome size mismatch");

  const int nv = graph.num_vertices();
  ws.visited.assign(static_cast<std::size_t>(nv), 0);
  ws.pot.assign(static_cast<std::size_t>(nv), 0);
  ws.parent_edge.assign(static_cast<std::size_t>(nv), -1);
  ws.parent_vertex.assign(static_cast<std::size_t>(nv), -1);
  ws.in_tree.assign(graph.num_edges(), 0);
  ws.syndrome.assign(syndrome.begin(), syndrome.end());

  // Spanning forest of the erased subgraph, in the exact discovery order
  // of peel_correction: bitwise-identical forests make the non-degenerate
  // correction bitwise-identical to the plain peeling decoder's.
  ws.forest.clear();
  ws.forest.reserve(graph.num_edges());
  ws.stack.clear();
  auto dfs_from = [&](int root) {
    ws.stack.push_back(root);
    while (!ws.stack.empty()) {
      const int u = ws.stack.back();
      ws.stack.pop_back();
      for (int e : graph.incident(u)) {
        if (!erased[static_cast<std::size_t>(e)]) continue;
        const int v = graph.other_end(static_cast<std::size_t>(e), u);
        if (ws.visited[static_cast<std::size_t>(v)]) continue;
        ws.visited[static_cast<std::size_t>(v)] = 1;
        ws.pot[static_cast<std::size_t>(v)] = static_cast<char>(
            ws.pot[static_cast<std::size_t>(u)] ^
            cut_edges[static_cast<std::size_t>(e)]);
        ws.parent_edge[static_cast<std::size_t>(v)] = e;
        ws.parent_vertex[static_cast<std::size_t>(v)] = u;
        ws.in_tree[static_cast<std::size_t>(e)] = 1;
        ws.forest.push_back({e, u, v});
        ws.stack.push_back(v);
      }
    }
  };
  // All boundary vertices are one super-root of potential 0: mark them
  // visited first so no boundary vertex becomes a child, then grow from
  // them before any interior component gets its own root.
  for (int v = graph.num_real_vertices(); v < nv; ++v)
    ws.visited[static_cast<std::size_t>(v)] = 1;
  for (int v = graph.num_real_vertices(); v < nv; ++v) dfs_from(v);
  for (int v = 0; v < graph.num_real_vertices(); ++v) {
    if (ws.visited[static_cast<std::size_t>(v)]) continue;
    ws.visited[static_cast<std::size_t>(v)] = 1;
    dfs_from(v);
  }

  // Degeneracy scan over the non-tree erased edges. Each such edge closes
  // exactly one cycle of the super-rooted forest (a genuine cycle, or a
  // boundary-to-boundary path through the super-root); the cycle's
  // logical-cut parity is pot[u] ^ pot[v] ^ cut(e). One odd cycle is a
  // logical operator supported on the erasure — keep the first as the
  // witness for the class flip below.
  ErasureMlInfo decision;
  int witness_edge = -1;
  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    if (!erased[e] || ws.in_tree[e]) continue;
    const auto& edge = graph.edge(e);
    const char parity = static_cast<char>(
        ws.pot[static_cast<std::size_t>(edge.u)] ^
        ws.pot[static_cast<std::size_t>(edge.v)] ^ cut_edges[e]);
    if (parity) {
      decision.degenerate = true;
      witness_edge = static_cast<int>(e);
      break;
    }
  }

  // Peel leaves inward, exactly like peel_correction.
  ws.correction.assign(graph.num_edges(), 0);
  for (auto it = ws.forest.rbegin(); it != ws.forest.rend(); ++it) {
    const int child = it->child;
    if (!ws.syndrome[static_cast<std::size_t>(child)]) continue;
    ws.correction[static_cast<std::size_t>(it->edge)] = 1;
    ws.syndrome[static_cast<std::size_t>(child)] = 0;
    if (!graph.is_boundary(it->parent))
      ws.syndrome[static_cast<std::size_t>(it->parent)] ^= 1;
  }
  for (char bit : ws.syndrome)
    if (bit)
      throw std::logic_error(
          "erasure_ml: unmatched syndrome (erased component has odd parity "
          "and no boundary)");

  // Class of the peeled correction: parity over the logical cut.
  char cls = 0;
  for (std::size_t e = 0; e < graph.num_edges(); ++e)
    cls ^= static_cast<char>(ws.correction[e] & cut_edges[e]);

  if (decision.degenerate && cls) {
    // Both classes are equiprobable; normalize to class 0 by XORing the
    // witness cycle into the correction. The cycle is the witness edge
    // plus both endpoints' tree paths to their roots: interior vertices
    // are touched twice, roots are boundary vertices (absorbed) or the
    // shared root of one component (touched by both paths), and any
    // shared path segment cancels under XOR — so the syndrome is
    // unchanged while the cut parity flips.
    const auto& edge = graph.edge(static_cast<std::size_t>(witness_edge));
    ws.correction[static_cast<std::size_t>(witness_edge)] ^= 1;
    for (int x : {edge.u, edge.v}) {
      while (ws.parent_edge[static_cast<std::size_t>(x)] != -1) {
        ws.correction[static_cast<std::size_t>(
            ws.parent_edge[static_cast<std::size_t>(x)])] ^= 1;
        x = ws.parent_vertex[static_cast<std::size_t>(x)];
      }
    }
    cls = 0;
  }
  decision.chosen_class = cls;
  if (info != nullptr) *info = decision;
  return ws.correction;
}

ErasureMlDecoder::ErasureMlDecoder(const qec::CodeLattice& lattice)
    : lattice_(&lattice) {
  for (const auto kind : {qec::GraphKind::Z, qec::GraphKind::X}) {
    std::vector<char>& flags =
        kind == qec::GraphKind::Z ? cut_flags_z_ : cut_flags_x_;
    flags.assign(lattice.graph(kind).num_edges(), 0);
    // Edge index == data-qubit index by the lattice contract.
    for (const int q : lattice.logical_cut(kind))
      flags[static_cast<std::size_t>(q)] = 1;
  }
}

const std::vector<char>& ErasureMlDecoder::cut_flags(
    const DecodeInput& input) const {
  if (input.graph == &lattice_->graph(qec::GraphKind::Z)) return cut_flags_z_;
  if (input.graph == &lattice_->graph(qec::GraphKind::X)) return cut_flags_x_;
  throw std::invalid_argument(
      "ErasureMlDecoder: input graph belongs to a different lattice");
}

std::vector<char> ErasureMlDecoder::decode(const DecodeInput& input) const {
  ErasureMlWorkspace ws;
  return decode_erasure_ml(*input.graph, cut_flags(input), input.erased,
                           input.syndrome, ws);
}

const std::vector<char>& ErasureMlDecoder::decode(const DecodeInput& input,
                                                  DecodeWorkspace& ws) const {
  return decode_erasure_ml(*input.graph, cut_flags(input), input.erased,
                           input.syndrome, ws.erasure_ml);
}

ErasureMlDecision ErasureMlDecoder::decode_with_info(
    const DecodeInput& input) const {
  ErasureMlWorkspace ws;
  ErasureMlDecision out;
  out.correction = decode_erasure_ml(*input.graph, cut_flags(input),
                                     input.erased, input.syndrome, ws,
                                     &out.info);
  return out;
}

}  // namespace surfnet::decoder
