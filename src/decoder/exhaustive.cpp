#include "decoder/exhaustive.h"

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "util/contracts.h"

namespace surfnet::decoder {

namespace {

constexpr std::size_t kMaxEdges = 20;

// Unconditional FATAL (not a catchable domain exception, and not compiled
// out in Release like the SURFNET_EXPECTS macro): past these caps the
// enumeration masks overflow and would return confidently wrong answers,
// so the only safe response is the contract trampoline — abort with a
// clear report, or ContractViolation under a test handler.
void require_enumerable(const qec::DecodingGraph& graph) {
  if (graph.num_edges() > kMaxEdges)
    util::contract_fail(
        "precondition", "graph.num_edges() <= kMaxEdges", __FILE__, __LINE__,
        "exhaustive ML enumerates 2^E configurations: %zu edges exceed the "
        "cap of %zu (use d <= 3, or decoder/erasure_ml for exact ML on "
        "erasures at any distance)",
        graph.num_edges(), kMaxEdges);
  if (graph.num_real_vertices() > 63)
    util::contract_fail(
        "precondition", "graph.num_real_vertices() <= 63", __FILE__, __LINE__,
        "exhaustive ML packs syndromes into 64-bit masks: %d measurement "
        "vertices overflow them",
        graph.num_real_vertices());
}

}  // namespace

MlDecision decode_ml(const qec::CodeLattice& lattice, qec::GraphKind kind,
                     const DecodeInput& input) {
  const qec::DecodingGraph& graph = lattice.graph(kind);
  if (input.graph != &graph)
    throw std::invalid_argument("decode_ml: input graph is not the "
                                "lattice's graph of the given kind");
  require_enumerable(graph);
  const std::size_t num_edges = graph.num_edges();

  // Per-edge syndrome masks over the real (measured) vertices; boundary
  // endpoints absorb flips.
  std::vector<std::uint64_t> vertex_mask(num_edges, 0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    const auto& edge = graph.edge(e);
    for (const int endpoint : {edge.u, edge.v})
      if (!graph.is_boundary(endpoint))
        vertex_mask[e] ^= std::uint64_t{1} << endpoint;
  }
  std::uint64_t target = 0;
  for (int v = 0; v < graph.num_real_vertices(); ++v)
    if (input.syndrome[static_cast<std::size_t>(v)])
      target |= std::uint64_t{1} << v;

  // Logical-cut parity decides the homology class (edge index ==
  // data-qubit index by the lattice contract).
  std::uint32_t cut_mask = 0;
  for (const int q : lattice.logical_cut(kind))
    cut_mask |= std::uint32_t{1} << q;

  const std::vector<double> prob = effective_error_prob(input);

  MlDecision out;
  double best_prob[2] = {-1.0, -1.0};
  std::uint32_t best_config[2] = {0, 0};
  const std::uint32_t num_configs = std::uint32_t{1}
                                    << static_cast<unsigned>(num_edges);
  for (std::uint32_t config = 0; config < num_configs; ++config) {
    std::uint64_t syndrome = 0;
    double p = 1.0;
    for (std::size_t e = 0; e < num_edges; ++e) {
      if ((config >> e) & 1u) {
        syndrome ^= vertex_mask[e];
        p *= prob[e];
      } else {
        p *= 1.0 - prob[e];
      }
    }
    if (syndrome != target) continue;
    const int cls = static_cast<int>(std::popcount(config & cut_mask) & 1u);
    out.class_prob[cls] += p;
    if (p > best_prob[cls]) {
      best_prob[cls] = p;
      best_config[cls] = config;
    }
  }
  if (best_prob[0] < 0.0 && best_prob[1] < 0.0)
    throw std::logic_error(
        "decode_ml: no error configuration reproduces the syndrome");

  // ML over classes; a class with no representative cannot win (its total
  // is 0 and the other class has at least one configuration).
  out.chosen_class =
      out.class_prob[1] > out.class_prob[0] && best_prob[1] >= 0.0 ? 1 : 0;
  if (best_prob[out.chosen_class] < 0.0) out.chosen_class ^= 1;
  out.correction.assign(num_edges, 0);
  for (std::size_t e = 0; e < num_edges; ++e)
    if ((best_config[out.chosen_class] >> e) & 1u) out.correction[e] = 1;
  return out;
}

ExhaustiveMLDecoder::ExhaustiveMLDecoder(const qec::CodeLattice& lattice)
    : lattice_(&lattice) {
  require_enumerable(lattice.graph(qec::GraphKind::Z));
  require_enumerable(lattice.graph(qec::GraphKind::X));
}

std::vector<char> ExhaustiveMLDecoder::decode(const DecodeInput& input) const {
  const qec::GraphKind kind =
      input.graph == &lattice_->graph(qec::GraphKind::Z) ? qec::GraphKind::Z
                                                         : qec::GraphKind::X;
  if (input.graph != &lattice_->graph(kind))
    throw std::invalid_argument(
        "ExhaustiveMLDecoder: input graph belongs to a different lattice");
  return decode_ml(*lattice_, kind, input).correction;
}

}  // namespace surfnet::decoder
