#pragma once

// Reusable decode scratch. A DecodeWorkspace owns every buffer the cluster
// decoders need (growth state, peeling state, effective probabilities,
// growth config, correction output), so a hot loop that keeps one workspace
// per thread performs no steady-state heap allocations per decode. Any
// decoder can be handed any workspace — buffers are reinitialized, never
// assumed clean — and the same workspace may be reused across graphs of
// different sizes (buffers only ever grow).

#include <vector>

#include "decoder/cluster_growth.h"
#include "decoder/peeling.h"

namespace surfnet::decoder {

struct DecodeWorkspace {
  GrowthWorkspace growth;
  PeelWorkspace peel;
  GrowthConfig config;            ///< reused speed / pregrown buffers
  std::vector<double> prob;       ///< effective per-edge error probability
  std::vector<char> correction;   ///< output of the allocating fallback
};

}  // namespace surfnet::decoder
