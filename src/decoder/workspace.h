#pragma once

// Reusable decode scratch. A DecodeWorkspace owns every buffer the cluster
// decoders need (growth state, peeling state, effective probabilities,
// growth config, correction output), so a hot loop that keeps one workspace
// per thread performs no steady-state heap allocations per decode. Any
// decoder can be handed any workspace — buffers are reinitialized, never
// assumed clean — and the same workspace may be reused across graphs of
// different sizes (buffers only ever grow).

#include <utility>
#include <vector>

#include "decoder/cluster_growth.h"
#include "decoder/erasure_ml.h"
#include "decoder/peeling.h"

namespace surfnet::decoder {

/// Scratch of the MWPM decoder: per-edge weights, the syndrome list, one
/// Dijkstra tree per syndrome (dist/parent stored row-major, s x V), the
/// shared Dijkstra frontier, and the syndrome path graph handed to the
/// blossom matcher.
struct MwpmWorkspace {
  std::vector<double> edge_weight;            ///< per edge
  std::vector<int> syndromes;                 ///< lit real vertices
  std::vector<double> dist;                   ///< s x V shortest distances
  std::vector<int> parent_edge;               ///< s x V parent edges
  std::vector<std::pair<double, int>> heap;   ///< Dijkstra frontier
  std::vector<int> nearest_boundary;          ///< per syndrome
  std::vector<std::vector<double>> path_weight;  ///< matching input, 2s x 2s
};

struct DecodeWorkspace {
  GrowthWorkspace growth;
  PeelWorkspace peel;
  ErasureMlWorkspace erasure_ml;
  GrowthConfig config;            ///< reused speed / pregrown buffers
  MwpmWorkspace mwpm;
  std::vector<double> prob;       ///< effective per-edge error probability
  std::vector<char> correction;   ///< output of the allocating fallback
};

}  // namespace surfnet::decoder
