#include "decoder/code_trial.h"

#include "qec/syndrome.h"

namespace surfnet::decoder {

DecodeInput make_decode_input(const qec::CodeLattice& lattice,
                              qec::GraphKind kind,
                              const qec::ErrorSample& sample,
                              const std::vector<double>& component_prior) {
  const qec::DecodingGraph& graph = lattice.graph(kind);
  DecodeInput input;
  input.graph = &graph;
  const auto flips = qec::edge_flips(lattice, kind, sample.error);
  input.syndrome = qec::syndrome_bitmap(graph, flips);
  input.erased = qec::erased_edges(lattice, kind, sample.erased);
  input.error_prob.resize(graph.num_edges());
  for (std::size_t e = 0; e < graph.num_edges(); ++e)
    input.error_prob[e] =
        component_prior[static_cast<std::size_t>(graph.edge(e).data_qubit)];
  return input;
}

CodeTrialResult decode_sample(const qec::CodeLattice& lattice,
                              const qec::ErrorSample& sample,
                              const std::vector<double>& component_prior,
                              const Decoder& decoder) {
  CodeTrialWorkspace ws;
  return decode_sample(lattice, sample, component_prior, decoder, ws);
}

CodeTrialResult decode_sample(const qec::CodeLattice& lattice,
                              const qec::ErrorSample& sample,
                              const std::vector<double>& component_prior,
                              const Decoder& decoder,
                              CodeTrialWorkspace& ws) {
  CodeTrialResult result;
  for (const auto kind : {qec::GraphKind::Z, qec::GraphKind::X}) {
    const qec::DecodingGraph& graph = lattice.graph(kind);
    // The true flips double as the syndrome source and the evaluation
    // reference — computed once per graph.
    qec::edge_flips(lattice, kind, sample.error, ws.flips);
    ws.input.graph = &graph;
    qec::syndrome_bitmap(graph, ws.flips, ws.input.syndrome);
    qec::erased_edges(lattice, kind, sample.erased, ws.input.erased);
    ws.input.error_prob.resize(graph.num_edges());
    for (std::size_t e = 0; e < graph.num_edges(); ++e)
      ws.input.error_prob[e] =
          component_prior[static_cast<std::size_t>(graph.edge(e).data_qubit)];
    const auto& correction = decoder.decode(ws.input, ws.decode);
    const auto outcome =
        qec::evaluate_correction(lattice, kind, ws.flips, correction, ws.eval);
    (kind == qec::GraphKind::Z ? result.z_graph : result.x_graph) = outcome;
  }
  return result;
}

CodeTrialResult run_code_trial(const qec::CodeLattice& lattice,
                               const qec::NoiseProfile& profile,
                               qec::PauliChannel channel,
                               const Decoder& decoder, util::Rng& rng) {
  const auto sample = qec::sample_errors(profile, channel, rng);
  const auto prior = profile.component_error_prob(channel);
  return decode_sample(lattice, sample, prior, decoder);
}

double logical_error_rate(const qec::CodeLattice& lattice,
                          const qec::NoiseProfile& profile,
                          qec::PauliChannel channel, const Decoder& decoder,
                          int trials, util::Rng& rng) {
  // The prior depends only on the profile — computed once, not per trial.
  const auto prior = profile.component_error_prob(channel);
  CodeTrialWorkspace ws;
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    qec::sample_errors(profile, channel, rng, ws.sample);
    if (!decode_sample(lattice, ws.sample, prior, decoder, ws).success())
      ++failures;
  }
  return trials > 0 ? static_cast<double>(failures) / trials : 0.0;
}

}  // namespace surfnet::decoder
