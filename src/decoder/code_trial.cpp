#include "decoder/code_trial.h"

#include "qec/syndrome.h"

namespace surfnet::decoder {

DecodeInput make_decode_input(const qec::CodeLattice& lattice,
                              qec::GraphKind kind,
                              const qec::ErrorSample& sample,
                              const std::vector<double>& component_prior) {
  const qec::DecodingGraph& graph = lattice.graph(kind);
  DecodeInput input;
  input.graph = &graph;
  const auto flips = qec::edge_flips(lattice, kind, sample.error);
  input.syndrome = qec::syndrome_bitmap(graph, flips);
  input.erased = qec::erased_edges(lattice, kind, sample.erased);
  input.error_prob.resize(graph.num_edges());
  for (std::size_t e = 0; e < graph.num_edges(); ++e)
    input.error_prob[e] =
        component_prior[static_cast<std::size_t>(graph.edge(e).data_qubit)];
  return input;
}

CodeTrialResult decode_sample(const qec::CodeLattice& lattice,
                              const qec::ErrorSample& sample,
                              const std::vector<double>& component_prior,
                              const Decoder& decoder) {
  CodeTrialResult result;
  for (const auto kind : {qec::GraphKind::Z, qec::GraphKind::X}) {
    const auto input = make_decode_input(lattice, kind, sample,
                                         component_prior);
    const auto correction = decoder.decode(input);
    const auto flips = qec::edge_flips(lattice, kind, sample.error);
    const auto outcome =
        qec::evaluate_correction(lattice, kind, flips, correction);
    (kind == qec::GraphKind::Z ? result.z_graph : result.x_graph) = outcome;
  }
  return result;
}

CodeTrialResult run_code_trial(const qec::CodeLattice& lattice,
                               const qec::NoiseProfile& profile,
                               qec::PauliChannel channel,
                               const Decoder& decoder, util::Rng& rng) {
  const auto sample = qec::sample_errors(profile, channel, rng);
  const auto prior = profile.component_error_prob(channel);
  return decode_sample(lattice, sample, prior, decoder);
}

double logical_error_rate(const qec::CodeLattice& lattice,
                          const qec::NoiseProfile& profile,
                          qec::PauliChannel channel, const Decoder& decoder,
                          int trials, util::Rng& rng) {
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    if (!run_code_trial(lattice, profile, channel, decoder, rng).success())
      ++failures;
  }
  return trials > 0 ? static_cast<double>(failures) / trials : 0.0;
}

}  // namespace surfnet::decoder
