#pragma once

// Deterministic parallel Monte-Carlo trial engine. Every trial t derives
// its RNG from trial_seed(base_seed, t) — a counter-based stream, fixed
// before any work is fanned out — so aggregate counts are bitwise-identical
// for ANY thread count and any scheduling order. Trials are distributed
// over a std::thread pool in chunks pulled from an atomic cursor; each
// worker keeps private accumulators (and its own decode workspace, so the
// steady-state decode path allocates nothing) that are merged at the end.

#include <cstdint>
#include <functional>
#include <vector>

#include "decoder/code_trial.h"
#include "obs/sink.h"
#include "util/rng.h"

namespace surfnet::decoder {

struct TrialRunnerOptions {
  /// Worker threads; <= 0 resolves to std::thread::hardware_concurrency().
  int threads = 1;
  /// Base seed of the counter-based per-trial streams.
  std::uint64_t seed = 20240607;
  /// Observability handle. After the workers join, the engine reports the
  /// merged run into it: counters "trials.count" / "trials.failures" /
  /// "trials.invalid" / "trials.valid_but_wrong" (exact, thread-count
  /// invariant) and timers "trials.busy_seconds" / "trials.wall_seconds"
  /// (measured). Null (the default) disables reporting.
  obs::Sink sink{};
};

/// Resolve a --threads style value: <= 0 means hardware concurrency
/// (at least 1).
int resolve_threads(int threads);

/// The seed of trial t under base seed `base`. One SplitMix64 mix of a
/// golden-ratio counter stride: distinct trials get decorrelated streams
/// and the mapping is independent of thread count.
inline std::uint64_t trial_seed(std::uint64_t base, std::uint64_t trial) {
  std::uint64_t s = base + 0x9E3779B97F4A7C15ULL * trial;
  return util::splitmix64(s);
}

/// What one trial reports back to the engine.
struct TrialOutcome {
  bool failure = false;          ///< trial counts as a logical failure
  bool invalid = false;          ///< a correction failed to match its syndrome
  bool valid_but_wrong = false;  ///< valid correction, logical operator flipped

  static TrialOutcome from(const CodeTrialResult& result) {
    TrialOutcome outcome;
    outcome.failure = !result.success();
    outcome.invalid = !result.z_graph.valid || !result.x_graph.valid;
    outcome.valid_but_wrong = !outcome.invalid && outcome.failure;
    return outcome;
  }
};

/// Merged accumulators of one run. Counts are exact and thread-count
/// invariant; timings are measured, not derived.
struct TrialReport {
  std::int64_t trials = 0;
  std::int64_t failures = 0;
  std::int64_t invalid = 0;
  std::int64_t valid_but_wrong = 0;
  int threads = 1;            ///< workers actually used
  double wall_seconds = 0.0;  ///< end-to-end elapsed time
  double busy_seconds = 0.0;  ///< trial-loop time summed over workers

  /// Mean logical error rate (failures / trials).
  double error_rate() const;
  /// Wilson 95% half-width of the error rate (util::Proportion).
  double error_rate_ci95() const;
  /// Aggregate throughput over wall-clock time.
  double trials_per_sec() const;
  /// Mean per-trial latency on one worker (busy time / trials).
  double ns_per_trial() const;
};

/// One trial: receives the trial index and a trial-private RNG already
/// seeded with trial_seed(base, index).
using TrialFn = std::function<TrialOutcome(std::int64_t trial, util::Rng&)>;

/// Generic engine. `make_worker` runs once per worker thread (build
/// thread-local workspaces there) and returns the per-trial callable.
TrialReport run_trials(std::int64_t trials, const TrialRunnerOptions& options,
                       const std::function<TrialFn()>& make_worker);

/// Code-trial engine behind the Fig. 8 style studies: per trial, sample an
/// error configuration and decode both graphs, allocation-free at steady
/// state. The per-qubit prior is computed once up front.
TrialReport run_logical_error_trials(const qec::CodeLattice& lattice,
                                     const qec::NoiseProfile& profile,
                                     qec::PauliChannel channel,
                                     const Decoder& decoder,
                                     std::int64_t trials,
                                     const TrialRunnerOptions& options);

/// Same, but with an explicit per-qubit component prior handed to the
/// decoder instead of the profile's own (e.g. the split-blind ablation).
TrialReport run_logical_error_trials(const qec::CodeLattice& lattice,
                                     const qec::NoiseProfile& profile,
                                     qec::PauliChannel channel,
                                     const std::vector<double>& prior,
                                     const Decoder& decoder,
                                     std::int64_t trials,
                                     const TrialRunnerOptions& options);

}  // namespace surfnet::decoder
