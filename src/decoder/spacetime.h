#pragma once

// Space-time (phenomenological) decoding — the extension beyond the
// paper's error-free-measurement assumption (Sec. I: "All measurements
// are assumed to be error-free").
//
// T noisy syndrome-measurement rounds are followed by one perfect round.
// Data errors arriving in window t flip the detector layer t (the XOR of
// consecutive measurement outcomes); a measurement error at round t flips
// detector layers t and t+1. The resulting decoding problem lives on a
// 3D graph: T+1 copies of the base decoding graph (horizontal edges =
// data qubits per window; the final layer carries no fresh data errors but
// exists as detector targets) connected by vertical edges (measurement
// errors), with the base graph's two space boundaries kept virtual. Any
// Decoder in this library runs on it unchanged.

#include <vector>

#include "decoder/decoder.h"
#include "qec/code_lattice.h"
#include "qec/logical.h"
#include "qec/pauli.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace surfnet::decoder {

/// The 3D decoding graph for one stabilizer type over T noisy rounds.
class SpaceTimeGraph {
 public:
  /// `rounds` = number of noisy measurement rounds T (>= 1). Layers
  /// 0..T-1 are the detectors after each noisy round; layer T is the
  /// detector between the last noisy round and the perfect final round.
  SpaceTimeGraph(const qec::CodeLattice& lattice, qec::GraphKind kind,
                 int rounds);

  const qec::DecodingGraph& graph() const { return graph_; }
  qec::GraphKind kind() const { return kind_; }
  int rounds() const { return rounds_; }
  int layers() const { return rounds_ + 1; }
  int num_layer_vertices() const { return base_vertices_; }

  /// Edge classification. Horizontal edges carry (window, data qubit);
  /// vertical edges carry (round, stabilizer).
  bool is_horizontal(std::size_t edge) const {
    SURFNET_EXPECTS(edge < edge_window_.size());
    return edge_window_[edge] >= 0;
  }
  int edge_window(std::size_t edge) const {
    SURFNET_EXPECTS(edge < edge_window_.size());
    return edge_window_[edge];
  }
  int edge_qubit(std::size_t edge) const {
    SURFNET_EXPECTS(edge < edge_qubit_.size());
    return edge_qubit_[edge];
  }

  /// Per-edge prior error probabilities for the decoders.
  std::vector<double> edge_priors(double data_rate,
                                  double measurement_rate) const;

 private:
  qec::GraphKind kind_;
  int rounds_;
  int base_vertices_;
  qec::DecodingGraph graph_;
  std::vector<int> edge_window_;  ///< window index, or -1 for vertical
  std::vector<int> edge_qubit_;   ///< data qubit (horizontal) or stabilizer
};

/// One sampled space-time error history.
struct SpaceTimeSample {
  /// Per window (0..T-1): per-edge X/Z-component flips of the base graph.
  std::vector<std::vector<char>> window_flips;
  /// Per noisy round (0..T-1): per-stabilizer measurement flips.
  std::vector<std::vector<char>> measurement_flips;
};

/// Sample i.i.d. data flips (per component, rate `data_rate`) and
/// measurement flips (rate `measurement_rate`).
SpaceTimeSample sample_spacetime(const qec::CodeLattice& lattice,
                                 qec::GraphKind kind, int rounds,
                                 double data_rate, double measurement_rate,
                                 util::Rng& rng);

/// Detector bitmap over the space-time graph's real vertices.
std::vector<char> spacetime_detectors(const SpaceTimeGraph& graph,
                                      const SpaceTimeSample& sample);

/// Decode one sample and report validity + logical outcome: the residual
/// (true flips XOR correction), projected onto space by XOR over layers,
/// must be a stabilizer (no logical-cut crossing).
qec::DecodeOutcome decode_spacetime(const qec::CodeLattice& lattice,
                                    const SpaceTimeGraph& graph,
                                    const SpaceTimeSample& sample,
                                    const Decoder& decoder,
                                    double data_rate,
                                    double measurement_rate);

/// One sample-and-decode trial over both graph kinds (Z first, then X —
/// the same draw order as the serial Monte-Carlo loop). Suitable as the
/// per-trial body of the parallel trial runner; the prebuilt graphs are
/// shared read-only across threads.
bool spacetime_trial(const qec::CodeLattice& lattice,
                     const SpaceTimeGraph& z_graph,
                     const SpaceTimeGraph& x_graph, double data_rate,
                     double measurement_rate, const Decoder& decoder,
                     util::Rng& rng);

/// Monte-Carlo logical error rate over both graph kinds.
double spacetime_logical_error_rate(const qec::CodeLattice& lattice,
                                    int rounds, double data_rate,
                                    double measurement_rate,
                                    const Decoder& decoder, int trials,
                                    util::Rng& rng);

}  // namespace surfnet::decoder
