#pragma once

// Shared cluster-growth engine behind the Union-Find baseline decoder and
// the SurfNet Decoder (paper Algorithm 2). Odd clusters (odd syndrome
// parity, not touching a boundary) grow their frontier edges every round;
// a fully grown edge fuses the clusters at its endpoints (union-find).
// Growth stops when no odd cluster remains; the grown region is then handed
// to the peeling decoder.
//
// The two decoders differ only in their growth policy:
//   * Union-Find baseline: every edge grows by half an edge per round and
//     erased edges are part of the region from the start (ref. [32]).
//   * SurfNet Decoder: edge e grows by speed(e) = -r / ln(1 - rho_e) per
//     round, so erasures (rho = 0.5) and low-fidelity Support qubits are
//     absorbed before high-fidelity Core qubits.

#include <vector>

#include "decoder/dsu.h"
#include "qec/graph.h"

namespace surfnet::decoder {

struct GrowthConfig {
  /// Growth added to an edge per round from EACH incident odd cluster,
  /// in units of the edge's length (1.0 = a whole edge).
  std::vector<double> speed;
  /// Edges fully grown before the first round (erasures, for the UF
  /// baseline). May be empty, meaning none.
  std::vector<char> pregrown;
  /// Safety cap on growth rounds; exceeded only on a bug or a pathological
  /// speed assignment.
  int max_rounds = 1 << 20;
};

/// Reusable growth state. Cluster metadata (parity, boundary flag, frontier
/// edge list) is stored per vertex and is authoritative only at DSU roots.
/// Buffers are reinitialized — never freed — per decode, so steady-state
/// growth performs no heap allocations.
struct GrowthWorkspace {
  Dsu dsu;
  std::vector<char> parity;
  std::vector<char> touches_boundary;
  std::vector<std::vector<int>> frontier;
  std::vector<double> growth;
  std::vector<char> region;
  std::vector<int> stamp;
  std::vector<int> active;
  std::vector<int> next_active;
  std::vector<std::size_t> newly_grown;
  /// Scratch of check_growth_invariants (SURFNET_CHECKS); owned by the
  /// workspace so the validated decode path stays allocation-free at
  /// steady state.
  std::vector<int> dbg_members;
  std::vector<char> dbg_parity;
  std::vector<char> dbg_boundary;
};

/// Run cluster growth; returns the per-edge region mask (grown edges, which
/// always includes pregrown ones) suitable for peel_correction.
std::vector<char> grow_clusters(const qec::DecodingGraph& graph,
                                const std::vector<char>& syndrome,
                                const GrowthConfig& config);

/// Allocation-free variant: the region mask is written into (and returned
/// from) `ws.region`.
const std::vector<char>& grow_clusters(const qec::DecodingGraph& graph,
                                       const std::vector<char>& syndrome,
                                       const GrowthConfig& config,
                                       GrowthWorkspace& ws);

}  // namespace surfnet::decoder
