#include "decoder/cluster_growth.h"

#include <stdexcept>
#include <utility>

#include "decoder/validate.h"
#include "util/contracts.h"

namespace surfnet::decoder {

namespace {

constexpr double kFullyGrown = 1.0 - 1e-9;

bool is_odd(const GrowthWorkspace& ws, int root) {
  return ws.parity[static_cast<std::size_t>(root)] &&
         !ws.touches_boundary[static_cast<std::size_t>(root)];
}

/// Fuse the endpoints of a fully grown edge. Returns the surviving root
/// when a union happened, or the affected root when the edge hit a
/// boundary, or -1 when nothing changed.
int fuse(GrowthWorkspace& ws, const qec::DecodingGraph& graph,
         std::size_t e) {
  const auto& edge = graph.edge(e);
  const bool bu = graph.is_boundary(edge.u);
  const bool bv = graph.is_boundary(edge.v);
  if (bu && bv) return -1;
  if (bu || bv) {
    const int real = bu ? edge.v : edge.u;
    const int root = ws.dsu.find(real);
    ws.touches_boundary[static_cast<std::size_t>(root)] = 1;
    return root;
  }
  const int ru = ws.dsu.find(edge.u);
  const int rv = ws.dsu.find(edge.v);
  if (ru == rv) return -1;
  const int survivor = ws.dsu.unite(ru, rv);
  const int other = (survivor == ru) ? rv : ru;
  ws.parity[static_cast<std::size_t>(survivor)] =
      static_cast<char>(ws.parity[static_cast<std::size_t>(survivor)] ^
                        ws.parity[static_cast<std::size_t>(other)]);
  ws.touches_boundary[static_cast<std::size_t>(survivor)] |=
      ws.touches_boundary[static_cast<std::size_t>(other)];
  auto& dst = ws.frontier[static_cast<std::size_t>(survivor)];
  auto& src = ws.frontier[static_cast<std::size_t>(other)];
  dst.insert(dst.end(), src.begin(), src.end());
  src.clear();
  return survivor;
}

}  // namespace

std::vector<char> grow_clusters(const qec::DecodingGraph& graph,
                                const std::vector<char>& syndrome,
                                const GrowthConfig& config) {
  GrowthWorkspace ws;
  return grow_clusters(graph, syndrome, config, ws);
}

const std::vector<char>& grow_clusters(const qec::DecodingGraph& graph,
                                       const std::vector<char>& syndrome,
                                       const GrowthConfig& config,
                                       GrowthWorkspace& ws) {
  if (syndrome.size() != static_cast<std::size_t>(graph.num_real_vertices()))
    throw std::invalid_argument("grow_clusters: syndrome size mismatch");
  if (config.speed.size() != graph.num_edges())
    throw std::invalid_argument("grow_clusters: speed size mismatch");
  if (!config.pregrown.empty() && config.pregrown.size() != graph.num_edges())
    throw std::invalid_argument("grow_clusters: pregrown size mismatch");

  const auto nv = static_cast<std::size_t>(graph.num_real_vertices());
  ws.dsu.reset(nv);
  ws.parity.assign(syndrome.begin(), syndrome.end());
  ws.touches_boundary.assign(nv, 0);
  // Never shrink the frontier table: inner vectors keep their capacity
  // across decodes (only the first nv entries are used).
  if (ws.frontier.size() < nv) ws.frontier.resize(nv);
  for (int v = 0; v < graph.num_real_vertices(); ++v) {
    const auto incident = graph.incident(v);
    ws.frontier[static_cast<std::size_t>(v)].assign(incident.begin(),
                                                    incident.end());
  }
  ws.growth.assign(graph.num_edges(), 0.0);
  ws.region.assign(graph.num_edges(), 0);
  ws.stamp.assign(nv, -1);

  // Seed the region with pregrown (erased) edges and fuse through them.
  if (!config.pregrown.empty()) {
    for (std::size_t e = 0; e < graph.num_edges(); ++e) {
      if (!config.pregrown[e]) continue;
      ws.region[e] = 1;
      ws.growth[e] = 1.0;
      fuse(ws, graph, e);
    }
  }

  // Initial active set: odd clusters.
  ws.active.clear();
  for (int v = 0; v < graph.num_real_vertices(); ++v)
    if (ws.dsu.find(v) == v && is_odd(ws, v)) ws.active.push_back(v);

  int round = 0;
  while (true) {
    if (++round > config.max_rounds)
      throw std::logic_error("grow_clusters: round cap exceeded");

    // Keep only the clusters that are still odd, deduplicated by root.
    // Fusions happen between rounds, so roots are stable within a round.
    ws.next_active.clear();
    for (int r : ws.active) {
      const int root = ws.dsu.find(r);
      if (ws.stamp[static_cast<std::size_t>(root)] == round) continue;
      ws.stamp[static_cast<std::size_t>(root)] = round;
      if (is_odd(ws, root)) ws.next_active.push_back(root);
    }
    if (ws.next_active.empty()) break;
    std::swap(ws.active, ws.next_active);

    ws.newly_grown.clear();
    std::size_t edges_touched = 0;

    for (int root : ws.active) {
      auto& edges = ws.frontier[static_cast<std::size_t>(root)];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto e = static_cast<std::size_t>(edges[i]);
        if (ws.region[e]) continue;  // interior: drop from frontier
        const auto& edge = graph.edge(e);
        if (!graph.is_boundary(edge.u) && !graph.is_boundary(edge.v) &&
            ws.dsu.same(edge.u, edge.v))
          continue;  // both ends inside this cluster: drop
        edges[keep++] = edges[i];
        ++edges_touched;
        ws.growth[e] += config.speed[e];
        if (ws.growth[e] >= kFullyGrown) {
          ws.region[e] = 1;
          ws.newly_grown.push_back(e);
        }
      }
      edges.resize(keep);
    }
    // A round where no odd cluster had any frontier edge to grow can never
    // make progress: the syndrome is undecodable (bug or bad input).
    if (edges_touched == 0)
      throw std::logic_error("grow_clusters: odd clusters cannot expand");

    ws.next_active.clear();
    for (std::size_t e : ws.newly_grown) {
      const int root = fuse(ws, graph, e);
      if (root >= 0 && is_odd(ws, ws.dsu.find(root)))
        ws.next_active.push_back(ws.dsu.find(root));
    }
    for (int r : ws.active) {
      const int root = ws.dsu.find(r);
      if (is_odd(ws, root)) ws.next_active.push_back(root);
    }
    std::swap(ws.active, ws.next_active);
  }

#if SURFNET_CHECKS
  check_growth_invariants(graph, syndrome, config, ws);
#endif
  return ws.region;
}

}  // namespace surfnet::decoder
