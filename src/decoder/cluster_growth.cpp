#include "decoder/cluster_growth.h"

#include <stdexcept>
#include <utility>

#include "decoder/dsu.h"

namespace surfnet::decoder {

namespace {

constexpr double kFullyGrown = 1.0 - 1e-9;

/// Mutable growth state. Cluster metadata (parity, boundary flag, frontier
/// edge list) is stored per vertex and is authoritative only at DSU roots.
struct GrowthState {
  explicit GrowthState(const qec::DecodingGraph& graph,
                       const std::vector<char>& syndrome)
      : graph(graph),
        dsu(static_cast<std::size_t>(graph.num_real_vertices())),
        parity(syndrome.begin(), syndrome.end()),
        touches_boundary(static_cast<std::size_t>(graph.num_real_vertices()),
                         0),
        frontier(static_cast<std::size_t>(graph.num_real_vertices())),
        growth(graph.num_edges(), 0.0),
        region(graph.num_edges(), 0) {
    for (int v = 0; v < graph.num_real_vertices(); ++v) {
      const auto incident = graph.incident(v);
      frontier[static_cast<std::size_t>(v)].assign(incident.begin(),
                                                   incident.end());
    }
  }

  bool is_odd(int root) const {
    return parity[static_cast<std::size_t>(root)] &&
           !touches_boundary[static_cast<std::size_t>(root)];
  }

  /// Fuse the endpoints of a fully grown edge. Returns the surviving root
  /// when a union happened, or the affected root when the edge hit a
  /// boundary, or -1 when nothing changed.
  int fuse(std::size_t e) {
    const auto& edge = graph.edge(e);
    const bool bu = graph.is_boundary(edge.u);
    const bool bv = graph.is_boundary(edge.v);
    if (bu && bv) return -1;
    if (bu || bv) {
      const int real = bu ? edge.v : edge.u;
      const int root = dsu.find(real);
      touches_boundary[static_cast<std::size_t>(root)] = 1;
      return root;
    }
    const int ru = dsu.find(edge.u);
    const int rv = dsu.find(edge.v);
    if (ru == rv) return -1;
    const int survivor = dsu.unite(ru, rv);
    const int other = (survivor == ru) ? rv : ru;
    parity[static_cast<std::size_t>(survivor)] =
        static_cast<char>(parity[static_cast<std::size_t>(survivor)] ^
                          parity[static_cast<std::size_t>(other)]);
    touches_boundary[static_cast<std::size_t>(survivor)] |=
        touches_boundary[static_cast<std::size_t>(other)];
    auto& dst = frontier[static_cast<std::size_t>(survivor)];
    auto& src = frontier[static_cast<std::size_t>(other)];
    dst.insert(dst.end(), src.begin(), src.end());
    src.clear();
    src.shrink_to_fit();
    return survivor;
  }

  const qec::DecodingGraph& graph;
  Dsu dsu;
  std::vector<char> parity;
  std::vector<char> touches_boundary;
  std::vector<std::vector<int>> frontier;
  std::vector<double> growth;
  std::vector<char> region;
};

}  // namespace

std::vector<char> grow_clusters(const qec::DecodingGraph& graph,
                                const std::vector<char>& syndrome,
                                const GrowthConfig& config) {
  if (syndrome.size() != static_cast<std::size_t>(graph.num_real_vertices()))
    throw std::invalid_argument("grow_clusters: syndrome size mismatch");
  if (config.speed.size() != graph.num_edges())
    throw std::invalid_argument("grow_clusters: speed size mismatch");
  if (!config.pregrown.empty() && config.pregrown.size() != graph.num_edges())
    throw std::invalid_argument("grow_clusters: pregrown size mismatch");

  GrowthState state(graph, syndrome);

  // Seed the region with pregrown (erased) edges and fuse through them.
  if (!config.pregrown.empty()) {
    for (std::size_t e = 0; e < graph.num_edges(); ++e) {
      if (!config.pregrown[e]) continue;
      state.region[e] = 1;
      state.growth[e] = 1.0;
      state.fuse(e);
    }
  }

  // Initial active set: odd clusters.
  std::vector<int> active;
  for (int v = 0; v < graph.num_real_vertices(); ++v)
    if (state.dsu.find(v) == v && state.is_odd(v)) active.push_back(v);

  std::vector<int> stamp(static_cast<std::size_t>(graph.num_real_vertices()),
                         -1);
  std::vector<std::size_t> newly_grown;
  int round = 0;
  while (true) {
    if (++round > config.max_rounds)
      throw std::logic_error("grow_clusters: round cap exceeded");

    // Keep only the clusters that are still odd, deduplicated by root.
    // Fusions happen between rounds, so roots are stable within a round.
    std::vector<int> odd_roots;
    for (int r : active) {
      const int root = state.dsu.find(r);
      if (stamp[static_cast<std::size_t>(root)] == round) continue;
      stamp[static_cast<std::size_t>(root)] = round;
      if (state.is_odd(root)) odd_roots.push_back(root);
    }
    if (odd_roots.empty()) break;
    active = odd_roots;

    newly_grown.clear();
    std::size_t edges_touched = 0;

    for (int root : active) {
      auto& edges = state.frontier[static_cast<std::size_t>(root)];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto e = static_cast<std::size_t>(edges[i]);
        if (state.region[e]) continue;  // interior: drop from frontier
        const auto& edge = graph.edge(e);
        if (!graph.is_boundary(edge.u) && !graph.is_boundary(edge.v) &&
            state.dsu.same(edge.u, edge.v))
          continue;  // both ends inside this cluster: drop
        edges[keep++] = edges[i];
        ++edges_touched;
        state.growth[e] += config.speed[e];
        if (state.growth[e] >= kFullyGrown) {
          state.region[e] = 1;
          newly_grown.push_back(e);
        }
      }
      edges.resize(keep);
    }
    // A round where no odd cluster had any frontier edge to grow can never
    // make progress: the syndrome is undecodable (bug or bad input).
    if (edges_touched == 0)
      throw std::logic_error("grow_clusters: odd clusters cannot expand");

    std::vector<int> next_active;
    for (std::size_t e : newly_grown) {
      const int root = state.fuse(e);
      if (root >= 0 && state.is_odd(state.dsu.find(root)))
        next_active.push_back(state.dsu.find(root));
    }
    for (int r : active) {
      const int root = state.dsu.find(r);
      if (state.is_odd(root)) next_active.push_back(root);
    }
    active = std::move(next_active);
  }

  return std::move(state.region);
}

}  // namespace surfnet::decoder
