#pragma once

// Union-Find decoder (Delfosse-Nickerson, paper ref. [32]) — the baseline
// the SurfNet Decoder is evaluated against in Fig. 8. Erased edges join the
// region before growth starts; every edge then grows by half an edge per
// round regardless of its fidelity. The grown region is peeled.

#include "decoder/decoder.h"

namespace surfnet::decoder {

class UnionFindDecoder final : public Decoder {
 public:
  std::vector<char> decode(const DecodeInput& input) const override;
  const std::vector<char>& decode(const DecodeInput& input,
                                  DecodeWorkspace& ws) const override;
  std::string_view name() const override { return "UnionFind"; }
};

}  // namespace surfnet::decoder
