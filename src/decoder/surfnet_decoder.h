#pragma once

// The SurfNet Decoder (paper Algorithm 2): weighted-growth Union-Find with
// peeling. Each edge grows at speed -r / ln(1 - rho_e) per round, where r
// is the decoder step size (default 2/3) and 1 - rho_e the edge's error
// probability. Erasures (rho = 0.5) grow fastest; low-fidelity Support
// qubits grow faster than high-fidelity Core qubits, steering clusters —
// and therefore decoding paths — through the most error-prone locations.

#include "decoder/decoder.h"

namespace surfnet::decoder {

class SurfNetDecoder final : public Decoder {
 public:
  /// `step_size` is the paper's r; it trades decoding speed for accuracy
  /// (default 2/3 "generally achieving a good balance").
  explicit SurfNetDecoder(double step_size = 2.0 / 3.0);

  std::vector<char> decode(const DecodeInput& input) const override;
  const std::vector<char>& decode(const DecodeInput& input,
                                  DecodeWorkspace& ws) const override;
  std::string_view name() const override { return "SurfNetDecoder"; }

  double step_size() const { return step_size_; }

 private:
  double step_size_;
};

}  // namespace surfnet::decoder
