#include "decoder/spacetime.h"

#include <stdexcept>

#include "qec/syndrome.h"

namespace surfnet::decoder {

SpaceTimeGraph::SpaceTimeGraph(const qec::CodeLattice& lattice,
                               qec::GraphKind kind, int rounds)
    : kind_(kind), rounds_(rounds) {
  if (rounds < 1)
    throw std::invalid_argument("space-time graph needs >= 1 noisy round");
  const qec::DecodingGraph& base = lattice.graph(kind);
  base_vertices_ = base.num_real_vertices();
  const int num_real = (rounds_ + 1) * base_vertices_;
  const qec::BoundaryIds boundary{num_real, num_real + 1};

  std::vector<qec::GraphEdge> edges;
  edges.reserve(static_cast<std::size_t>(rounds_) *
                (base.num_edges() + static_cast<std::size_t>(base_vertices_)));

  auto lift = [&](int base_vertex, int layer) {
    if (base.is_boundary(base_vertex))
      return base_vertex == base.boundary().first ? boundary.first
                                                  : boundary.second;
    return layer * base_vertices_ + base_vertex;
  };

  // Horizontal edges: data errors arriving in window t flip detector
  // layer t.
  for (int t = 0; t < rounds_; ++t) {
    for (std::size_t e = 0; e < base.num_edges(); ++e) {
      const auto& be = base.edge(e);
      qec::GraphEdge edge;
      edge.u = lift(be.u, t);
      edge.v = lift(be.v, t);
      edge.data_qubit = static_cast<int>(edges.size());
      edges.push_back(edge);
      edge_window_.push_back(t);
      edge_qubit_.push_back(be.data_qubit);
    }
  }
  // Vertical edges: a measurement error at noisy round t flips detector
  // layers t and t+1.
  for (int t = 0; t < rounds_; ++t) {
    for (int s = 0; s < base_vertices_; ++s) {
      qec::GraphEdge edge;
      edge.u = t * base_vertices_ + s;
      edge.v = (t + 1) * base_vertices_ + s;
      edge.data_qubit = static_cast<int>(edges.size());
      edges.push_back(edge);
      edge_window_.push_back(-1);
      edge_qubit_.push_back(s);
    }
  }
  graph_ = qec::DecodingGraph(num_real, boundary, std::move(edges));
}

std::vector<double> SpaceTimeGraph::edge_priors(
    double data_rate, double measurement_rate) const {
  std::vector<double> priors(graph_.num_edges());
  for (std::size_t e = 0; e < priors.size(); ++e)
    priors[e] = is_horizontal(e) ? data_rate : measurement_rate;
  return priors;
}

SpaceTimeSample sample_spacetime(const qec::CodeLattice& lattice,
                                 qec::GraphKind kind, int rounds,
                                 double data_rate, double measurement_rate,
                                 util::Rng& rng) {
  const qec::DecodingGraph& base = lattice.graph(kind);
  SpaceTimeSample sample;
  sample.window_flips.assign(
      static_cast<std::size_t>(rounds),
      std::vector<char>(base.num_edges(), 0));
  sample.measurement_flips.assign(
      static_cast<std::size_t>(rounds),
      std::vector<char>(static_cast<std::size_t>(base.num_real_vertices()),
                        0));
  for (auto& window : sample.window_flips)
    for (auto& flip : window)
      if (rng.bernoulli(data_rate)) flip = 1;
  for (auto& round : sample.measurement_flips)
    for (auto& flip : round)
      if (rng.bernoulli(measurement_rate)) flip = 1;
  return sample;
}

namespace {

/// True per-spacetime-edge flips of a sample (matching the graph's edge
/// layout: horizontal window-major, then vertical round-major).
std::vector<char> spacetime_flips(const SpaceTimeGraph& graph,
                                  const SpaceTimeSample& sample) {
  std::vector<char> flips(graph.graph().num_edges(), 0);
  std::size_t e = 0;
  for (const auto& window : sample.window_flips)
    for (char flip : window) flips[e++] = flip;
  for (const auto& round : sample.measurement_flips)
    for (char flip : round) flips[e++] = flip;
  if (e != flips.size())
    throw std::logic_error("spacetime_flips: sample/graph shape mismatch");
  return flips;
}

}  // namespace

std::vector<char> spacetime_detectors(const SpaceTimeGraph& graph,
                                      const SpaceTimeSample& sample) {
  return qec::syndrome_bitmap(graph.graph(), spacetime_flips(graph, sample));
}

qec::DecodeOutcome decode_spacetime(const qec::CodeLattice& lattice,
                                    const SpaceTimeGraph& graph,
                                    const SpaceTimeSample& sample,
                                    const Decoder& decoder,
                                    double data_rate,
                                    double measurement_rate) {
  const auto flips = spacetime_flips(graph, sample);

  DecodeInput input;
  input.graph = &graph.graph();
  input.syndrome = qec::syndrome_bitmap(graph.graph(), flips);
  input.erased.assign(graph.graph().num_edges(), 0);
  input.error_prob = graph.edge_priors(data_rate, measurement_rate);
  const auto correction = decoder.decode(input);

  qec::DecodeOutcome outcome;
  outcome.valid = qec::correction_valid(graph.graph(), flips, correction);
  if (!outcome.valid) return outcome;

  // Project the residual onto space: XOR the horizontal components over
  // all windows per base data qubit; vertical edges project out. A valid
  // space-time residual projects to a syndrome-free space chain, so the
  // usual logical-cut parity decides success.
  const auto residual_st = qec::residual(flips, correction);
  std::vector<char> space(lattice.graph(graph.kind()).num_edges(), 0);
  for (std::size_t e = 0; e < residual_st.size(); ++e) {
    if (!residual_st[e] || !graph.is_horizontal(e)) continue;
    space[static_cast<std::size_t>(graph.edge_qubit(e))] ^= 1;
  }
  outcome.logical = qec::logical_flip(lattice, graph.kind(), space);
  return outcome;
}

bool spacetime_trial(const qec::CodeLattice& lattice,
                     const SpaceTimeGraph& z_graph,
                     const SpaceTimeGraph& x_graph, double data_rate,
                     double measurement_rate, const Decoder& decoder,
                     util::Rng& rng) {
  bool ok = true;
  for (const auto* graph : {&z_graph, &x_graph}) {
    const auto sample =
        sample_spacetime(lattice, graph->kind(), graph->rounds(), data_rate,
                         measurement_rate, rng);
    const auto outcome = decode_spacetime(lattice, *graph, sample, decoder,
                                          data_rate, measurement_rate);
    if (!outcome.success()) ok = false;
  }
  return ok;
}

double spacetime_logical_error_rate(const qec::CodeLattice& lattice,
                                    int rounds, double data_rate,
                                    double measurement_rate,
                                    const Decoder& decoder, int trials,
                                    util::Rng& rng) {
  const SpaceTimeGraph z_graph(lattice, qec::GraphKind::Z, rounds);
  const SpaceTimeGraph x_graph(lattice, qec::GraphKind::X, rounds);
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    if (!spacetime_trial(lattice, z_graph, x_graph, data_rate,
                         measurement_rate, decoder, rng))
      ++failures;
  }
  return trials > 0 ? static_cast<double>(failures) / trials : 0.0;
}

}  // namespace surfnet::decoder
