#include "decoder/erasure_decoder.h"

#include "decoder/peeling.h"
#include "decoder/workspace.h"

namespace surfnet::decoder {

std::vector<char> ErasureDecoder::decode(const DecodeInput& input) const {
  return peel_correction(*input.graph, input.erased, input.syndrome);
}

const std::vector<char>& ErasureDecoder::decode(const DecodeInput& input,
                                                DecodeWorkspace& ws) const {
  return peel_correction(*input.graph, input.erased, input.syndrome, ws.peel);
}

}  // namespace surfnet::decoder
