#include "decoder/erasure_decoder.h"

#include "decoder/peeling.h"

namespace surfnet::decoder {

std::vector<char> ErasureDecoder::decode(const DecodeInput& input) const {
  return peel_correction(*input.graph, input.erased, input.syndrome);
}

}  // namespace surfnet::decoder
