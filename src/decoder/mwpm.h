#pragma once

// Modified MWPM decoder (paper Algorithm 1 / Theorem 1). The decoding graph
// is weighted with w = -ln(1 - rho) per edge (erasures: rho = 0.5). For
// every syndrome, Dijkstra computes shortest paths to all other syndromes
// and to the nearest boundary; a path graph over the syndromes — augmented
// with one virtual boundary partner per syndrome (virtual-virtual edges are
// free) — is handed to the exact blossom matcher, and matched paths are
// XOR-ed into the correction.

#include "decoder/decoder.h"

namespace surfnet::decoder {

class MwpmDecoder final : public Decoder {
 public:
  std::vector<char> decode(const DecodeInput& input) const override;
  /// Zero-steady-state-allocation path: Dijkstra trees, the frontier heap,
  /// and the syndrome path graph all live in the workspace and only grow.
  const std::vector<char>& decode(const DecodeInput& input,
                                  DecodeWorkspace& ws) const override;
  std::string_view name() const override { return "MWPM"; }
};

}  // namespace surfnet::decoder
