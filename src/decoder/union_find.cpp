#include "decoder/union_find.h"

#include "decoder/cluster_growth.h"
#include "decoder/peeling.h"

namespace surfnet::decoder {

std::vector<char> UnionFindDecoder::decode(const DecodeInput& input) const {
  const qec::DecodingGraph& graph = *input.graph;
  // Uniform half-edge growth; fidelity information is deliberately unused.
  GrowthConfig config;
  config.speed.assign(graph.num_edges(), 0.5);
  config.pregrown = input.erased;
  const auto region = grow_clusters(graph, input.syndrome, config);
  return peel_correction(graph, region, input.syndrome);
}

}  // namespace surfnet::decoder
