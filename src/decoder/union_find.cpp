#include "decoder/union_find.h"

#include "decoder/workspace.h"

namespace surfnet::decoder {

std::vector<char> UnionFindDecoder::decode(const DecodeInput& input) const {
  DecodeWorkspace ws;
  return decode(input, ws);
}

const std::vector<char>& UnionFindDecoder::decode(const DecodeInput& input,
                                                  DecodeWorkspace& ws) const {
  const qec::DecodingGraph& graph = *input.graph;
  // Uniform half-edge growth; fidelity information is deliberately unused.
  ws.config.speed.assign(graph.num_edges(), 0.5);
  ws.config.pregrown = input.erased;
  const auto& region =
      grow_clusters(graph, input.syndrome, ws.config, ws.growth);
  return peel_correction(graph, region, input.syndrome, ws.peel);
}

}  // namespace surfnet::decoder
