#include "decoder/validate.h"

#include <cstddef>

#include "util/contracts.h"

namespace surfnet::decoder {

namespace {

// Must match the growth threshold in cluster_growth.cpp.
constexpr double kFullyGrown = 1.0 - 1e-9;

}  // namespace

void check_growth_invariants(const qec::DecodingGraph& graph,
                             const std::vector<char>& syndrome,
                             const GrowthConfig& config, GrowthWorkspace& ws) {
  const auto nv = static_cast<std::size_t>(graph.num_real_vertices());
  const std::size_t ne = graph.num_edges();
  SURFNET_ASSERT(syndrome.size() == nv, "syndrome %zu for %zu vertices",
                 syndrome.size(), nv);
  SURFNET_ASSERT(ws.parity.size() == nv && ws.touches_boundary.size() == nv,
                 "cluster metadata sized %zu/%zu for %zu vertices",
                 ws.parity.size(), ws.touches_boundary.size(), nv);
  SURFNET_ASSERT(ws.region.size() == ne && ws.growth.size() == ne,
                 "region/growth sized %zu/%zu for %zu edges", ws.region.size(),
                 ws.growth.size(), ne);

  // Region <-> growth consistency and erased-edge absorption.
  for (std::size_t e = 0; e < ne; ++e) {
    const bool pregrown = !config.pregrown.empty() && config.pregrown[e];
    if (pregrown)
      SURFNET_ASSERT(ws.region[e], "erased edge %zu not absorbed", e);
    if (ws.region[e])
      SURFNET_ASSERT(ws.growth[e] >= kFullyGrown,
                     "region edge %zu has growth %g", e, ws.growth[e]);
    else
      SURFNET_ASSERT(ws.growth[e] < kFullyGrown,
                     "fully grown edge %zu missing from region", e);
  }

  // Fusion closure: region edges between real vertices connect fused
  // clusters; region edges into a boundary mark their cluster.
  ws.dbg_boundary.assign(nv, 0);
  std::vector<char>& boundary_reach = ws.dbg_boundary;
  for (std::size_t e = 0; e < ne; ++e) {
    if (!ws.region[e]) continue;
    const qec::GraphEdge& edge = graph.edge(e);
    const bool bu = graph.is_boundary(edge.u);
    const bool bv = graph.is_boundary(edge.v);
    if (bu && bv) continue;
    if (bu || bv) {
      const int real = bu ? edge.v : edge.u;
      boundary_reach[static_cast<std::size_t>(ws.dsu.find(real))] = 1;
    } else {
      SURFNET_ASSERT(ws.dsu.same(edge.u, edge.v),
                     "region edge %zu (%d, %d) spans two clusters", e, edge.u,
                     edge.v);
    }
  }

  // Per-root parity, boundary flags, member counts and termination.
  ws.dbg_members.assign(nv, 0);
  ws.dbg_parity.assign(nv, 0);
  std::vector<int>& members = ws.dbg_members;
  std::vector<char>& parity = ws.dbg_parity;
  for (std::size_t v = 0; v < nv; ++v) {
    const auto root = static_cast<std::size_t>(ws.dsu.find(static_cast<int>(v)));
    ++members[root];
    parity[root] = static_cast<char>(parity[root] ^ (syndrome[v] ? 1 : 0));
  }
  for (std::size_t v = 0; v < nv; ++v) {
    if (static_cast<std::size_t>(ws.dsu.find(static_cast<int>(v))) != v)
      continue;  // not a root
    SURFNET_ASSERT(ws.dsu.size_of(static_cast<int>(v)) ==
                       static_cast<std::size_t>(members[v]),
                   "root %zu claims size %zu, has %d members", v,
                   ws.dsu.size_of(static_cast<int>(v)), members[v]);
    SURFNET_ASSERT((ws.parity[v] != 0) == (parity[v] != 0),
                   "root %zu parity flag %d, syndrome XOR %d", v,
                   ws.parity[v] ? 1 : 0, parity[v] ? 1 : 0);
    SURFNET_ASSERT((ws.touches_boundary[v] != 0) == (boundary_reach[v] != 0),
                   "root %zu boundary flag %d, boundary reach %d", v,
                   ws.touches_boundary[v] ? 1 : 0, boundary_reach[v] ? 1 : 0);
    SURFNET_ASSERT(!ws.parity[v] || ws.touches_boundary[v],
                   "odd cluster at root %zu survived growth", v);
  }
}

void check_peel_invariants(const qec::DecodingGraph& graph,
                           const std::vector<char>& region,
                           const std::vector<char>& syndrome,
                           const std::vector<char>& correction) {
  std::vector<char> scratch;
  check_peel_invariants(graph, region, syndrome, correction, scratch);
}

void check_peel_invariants(const qec::DecodingGraph& graph,
                           const std::vector<char>& region,
                           const std::vector<char>& syndrome,
                           const std::vector<char>& correction,
                           std::vector<char>& scratch) {
  const std::size_t ne = graph.num_edges();
  const auto nv = static_cast<std::size_t>(graph.num_real_vertices());
  SURFNET_ASSERT(correction.size() == ne, "correction %zu for %zu edges",
                 correction.size(), ne);
  SURFNET_ASSERT(region.size() == ne && syndrome.size() == nv,
                 "region %zu / syndrome %zu for %zu edges / %zu vertices",
                 region.size(), syndrome.size(), ne, nv);

  scratch.assign(nv, 0);
  std::vector<char>& reproduced = scratch;
  for (std::size_t e = 0; e < ne; ++e) {
    if (!correction[e]) continue;
    SURFNET_ASSERT(region[e], "correction edge %zu outside the region", e);
    const qec::GraphEdge& edge = graph.edge(e);
    if (!graph.is_boundary(edge.u))
      reproduced[static_cast<std::size_t>(edge.u)] ^= 1;
    if (!graph.is_boundary(edge.v))
      reproduced[static_cast<std::size_t>(edge.v)] ^= 1;
  }
  for (std::size_t v = 0; v < nv; ++v)
    SURFNET_ASSERT((reproduced[v] != 0) == (syndrome[v] != 0),
                   "correction reproduces syndrome %d at vertex %zu, "
                   "expected %d",
                   reproduced[v] ? 1 : 0, v, syndrome[v] ? 1 : 0);
}

}  // namespace surfnet::decoder
