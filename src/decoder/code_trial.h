#pragma once

// End-to-end single-code decoding trials: sample an error configuration on
// a surface code, decode both graphs (X-type errors on the Z-graph, Z-type
// on the X-graph), and report validity and logical success. This is the
// engine behind the Fig. 8 threshold study and behind per-communication
// fidelity in the network simulator.

#include "decoder/decoder.h"
#include "decoder/workspace.h"
#include "qec/error_model.h"
#include "qec/code_lattice.h"
#include "qec/logical.h"
#include "util/rng.h"

namespace surfnet::decoder {

struct CodeTrialResult {
  qec::DecodeOutcome z_graph;  ///< X-type error correction outcome
  qec::DecodeOutcome x_graph;  ///< Z-type error correction outcome
  bool success() const { return z_graph.success() && x_graph.success(); }
};

/// Everything one thread needs to run trials without per-trial heap
/// allocations: the sampled error, the per-graph decode input, the true
/// flips, the decoder scratch, and the evaluation scratch.
struct CodeTrialWorkspace {
  qec::ErrorSample sample;
  DecodeInput input;
  std::vector<char> flips;
  DecodeWorkspace decode;
  qec::EvalScratch eval;
};

/// Build the decoder input for one graph from a sampled error.
DecodeInput make_decode_input(const qec::CodeLattice& lattice,
                              qec::GraphKind kind,
                              const qec::ErrorSample& sample,
                              const std::vector<double>& component_prior);

/// Decode a given sampled error on both graphs.
CodeTrialResult decode_sample(const qec::CodeLattice& lattice,
                              const qec::ErrorSample& sample,
                              const std::vector<double>& component_prior,
                              const Decoder& decoder);

/// Allocation-free variant: reuses every buffer in `ws`. `sample` may
/// alias `ws.sample` (the trial runner samples into it directly).
CodeTrialResult decode_sample(const qec::CodeLattice& lattice,
                              const qec::ErrorSample& sample,
                              const std::vector<double>& component_prior,
                              const Decoder& decoder, CodeTrialWorkspace& ws);

/// Sample-and-decode convenience.
CodeTrialResult run_code_trial(const qec::CodeLattice& lattice,
                               const qec::NoiseProfile& profile,
                               qec::PauliChannel channel,
                               const Decoder& decoder, util::Rng& rng);

/// Monte-Carlo logical error rate over `trials` samples.
double logical_error_rate(const qec::CodeLattice& lattice,
                          const qec::NoiseProfile& profile,
                          qec::PauliChannel channel, const Decoder& decoder,
                          int trials, util::Rng& rng);

}  // namespace surfnet::decoder
