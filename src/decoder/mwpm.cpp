#include "decoder/mwpm.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include "decoder/blossom.h"
#include "decoder/workspace.h"

namespace surfnet::decoder {

namespace {

/// Dijkstra from `source` into caller-owned rows of a flat per-syndrome
/// table. The frontier heap is reused across calls (a manual binary heap
/// over the shared buffer instead of a fresh priority_queue per syndrome).
void dijkstra_into(const qec::DecodingGraph& graph, int source,
                   const std::vector<double>& edge_w, double* dist,
                   int* parent_edge,
                   std::vector<std::pair<double, int>>& heap) {
  const int nv = graph.num_vertices();
  std::fill(dist, dist + nv, std::numeric_limits<double>::infinity());
  std::fill(parent_edge, parent_edge + nv, -1);
  const auto by_dist = std::greater<std::pair<double, int>>{};
  heap.clear();
  dist[source] = 0.0;
  heap.emplace_back(0.0, source);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), by_dist);
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d > dist[u]) continue;
    // Paths do not continue through boundary vertices.
    if (graph.is_boundary(u) && u != source) continue;
    for (int e : graph.incident(u)) {
      const int v = graph.other_end(static_cast<std::size_t>(e), u);
      const double nd = d + edge_w[static_cast<std::size_t>(e)];
      if (nd < dist[v]) {
        dist[v] = nd;
        parent_edge[v] = e;
        heap.emplace_back(nd, v);
        std::push_heap(heap.begin(), heap.end(), by_dist);
      }
    }
  }
}

/// XOR the shortest path from `source` to `target` into `correction`,
/// walking parent edges backwards.
void apply_path(const qec::DecodingGraph& graph, const int* parent_edge,
                int source, int target, std::vector<char>& correction) {
  int v = target;
  while (v != source) {
    const int e = parent_edge[v];
    if (e < 0) throw std::logic_error("mwpm: broken shortest-path tree");
    correction[static_cast<std::size_t>(e)] ^= 1;
    v = graph.other_end(static_cast<std::size_t>(e), v);
  }
}

}  // namespace

std::vector<char> MwpmDecoder::decode(const DecodeInput& input) const {
  DecodeWorkspace ws;
  return decode(input, ws);
}

const std::vector<char>& MwpmDecoder::decode(const DecodeInput& input,
                                             DecodeWorkspace& ws) const {
  const qec::DecodingGraph& graph = *input.graph;
  effective_error_prob(input, ws.prob);
  MwpmWorkspace& mw = ws.mwpm;

  mw.edge_weight.resize(graph.num_edges());
  for (std::size_t e = 0; e < graph.num_edges(); ++e)
    mw.edge_weight[e] = edge_weight(ws.prob[e]);

  mw.syndromes.clear();
  for (int v = 0; v < graph.num_real_vertices(); ++v)
    if (input.syndrome[static_cast<std::size_t>(v)]) mw.syndromes.push_back(v);

  ws.correction.assign(graph.num_edges(), 0);
  if (mw.syndromes.empty()) return ws.correction;

  const int s = static_cast<int>(mw.syndromes.size());
  const int nv = graph.num_vertices();
  mw.dist.resize(static_cast<std::size_t>(s) * static_cast<std::size_t>(nv));
  mw.parent_edge.resize(static_cast<std::size_t>(s) *
                        static_cast<std::size_t>(nv));
  const auto dist_row = [&](int i) {
    return mw.dist.data() + static_cast<std::size_t>(i) * nv;
  };
  const auto parent_row = [&](int i) {
    return mw.parent_edge.data() + static_cast<std::size_t>(i) * nv;
  };
  for (int i = 0; i < s; ++i)
    dijkstra_into(graph, mw.syndromes[static_cast<std::size_t>(i)],
                  mw.edge_weight, dist_row(i), parent_row(i), mw.heap);

  // Path graph: vertices [0, s) are syndromes, [s, 2s) their boundary
  // partners. Syndrome-partner edges use the distance to the nearer
  // boundary; partner-partner edges are free; cross syndrome-partner edges
  // are absent.
  const int bd_a = graph.boundary().first;
  const int bd_b = graph.boundary().second;
  const int n = 2 * s;
  // The matcher insists on an exactly n x n matrix; surviving rows keep
  // their capacity across decodes.
  mw.path_weight.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    mw.path_weight[static_cast<std::size_t>(i)].assign(
        static_cast<std::size_t>(n), kNoEdge);
  auto& w = mw.path_weight;
  mw.nearest_boundary.assign(static_cast<std::size_t>(s), bd_a);
  for (int i = 0; i < s; ++i) {
    const double* d = dist_row(i);
    for (int j = i + 1; j < s; ++j) {
      const double dij = d[mw.syndromes[static_cast<std::size_t>(j)]];
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = dij;
      w[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = dij;
    }
    const double da = d[bd_a];
    const double db = d[bd_b];
    mw.nearest_boundary[static_cast<std::size_t>(i)] =
        (da <= db) ? bd_a : bd_b;
    const double dbound = std::min(da, db);
    w[static_cast<std::size_t>(i)][static_cast<std::size_t>(s + i)] = dbound;
    w[static_cast<std::size_t>(s + i)][static_cast<std::size_t>(i)] = dbound;
    for (int j = i + 1; j < s; ++j) {
      w[static_cast<std::size_t>(s + i)][static_cast<std::size_t>(s + j)] =
          0.0;
      w[static_cast<std::size_t>(s + j)][static_cast<std::size_t>(s + i)] =
          0.0;
    }
  }

  const auto matching = min_weight_perfect_matching(n, w);
  for (int i = 0; i < s; ++i) {
    const int mate = matching.mate[static_cast<std::size_t>(i)];
    if (mate < s) {
      if (mate > i)
        apply_path(graph, parent_row(i),
                   mw.syndromes[static_cast<std::size_t>(i)],
                   mw.syndromes[static_cast<std::size_t>(mate)],
                   ws.correction);
    } else {
      // Matched to the boundary: XOR the path to the nearer boundary vertex.
      apply_path(graph, parent_row(i),
                 mw.syndromes[static_cast<std::size_t>(i)],
                 mw.nearest_boundary[static_cast<std::size_t>(i)],
                 ws.correction);
    }
  }
  return ws.correction;
}

}  // namespace surfnet::decoder
