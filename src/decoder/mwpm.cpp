#include "decoder/mwpm.h"

#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "decoder/blossom.h"

namespace surfnet::decoder {

namespace {

struct DijkstraResult {
  std::vector<double> dist;      ///< per vertex
  std::vector<int> parent_edge;  ///< edge used to reach each vertex, -1 at src
};

DijkstraResult dijkstra(const qec::DecodingGraph& graph, int source,
                        const std::vector<double>& edge_w) {
  DijkstraResult out;
  out.dist.assign(static_cast<std::size_t>(graph.num_vertices()),
                  std::numeric_limits<double>::infinity());
  out.parent_edge.assign(static_cast<std::size_t>(graph.num_vertices()), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  out.dist[static_cast<std::size_t>(source)] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > out.dist[static_cast<std::size_t>(u)]) continue;
    // Paths do not continue through boundary vertices.
    if (graph.is_boundary(u) && u != source) continue;
    for (int e : graph.incident(u)) {
      const int v = graph.other_end(static_cast<std::size_t>(e), u);
      const double nd = d + edge_w[static_cast<std::size_t>(e)];
      if (nd < out.dist[static_cast<std::size_t>(v)]) {
        out.dist[static_cast<std::size_t>(v)] = nd;
        out.parent_edge[static_cast<std::size_t>(v)] = e;
        heap.push({nd, v});
      }
    }
  }
  return out;
}

/// XOR the shortest path from `source` to `target` into `correction`,
/// walking parent edges backwards.
void apply_path(const qec::DecodingGraph& graph, const DijkstraResult& sp,
                int source, int target, std::vector<char>& correction) {
  int v = target;
  while (v != source) {
    const int e = sp.parent_edge[static_cast<std::size_t>(v)];
    if (e < 0) throw std::logic_error("mwpm: broken shortest-path tree");
    correction[static_cast<std::size_t>(e)] ^= 1;
    v = graph.other_end(static_cast<std::size_t>(e), v);
  }
}

}  // namespace

std::vector<char> MwpmDecoder::decode(const DecodeInput& input) const {
  const qec::DecodingGraph& graph = *input.graph;
  const auto prob = effective_error_prob(input);

  std::vector<double> edge_w(graph.num_edges());
  for (std::size_t e = 0; e < graph.num_edges(); ++e)
    edge_w[e] = edge_weight(prob[e]);

  std::vector<int> syndromes;
  for (int v = 0; v < graph.num_real_vertices(); ++v)
    if (input.syndrome[static_cast<std::size_t>(v)]) syndromes.push_back(v);

  std::vector<char> correction(graph.num_edges(), 0);
  if (syndromes.empty()) return correction;

  const int s = static_cast<int>(syndromes.size());
  std::vector<DijkstraResult> sp;
  sp.reserve(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i)
    sp.push_back(dijkstra(graph, syndromes[static_cast<std::size_t>(i)],
                          edge_w));

  // Path graph: vertices [0, s) are syndromes, [s, 2s) their boundary
  // partners. Syndrome-partner edges use the distance to the nearer
  // boundary; partner-partner edges are free; cross syndrome-partner edges
  // are absent.
  const int bd_a = graph.boundary().first;
  const int bd_b = graph.boundary().second;
  const int n = 2 * s;
  std::vector<std::vector<double>> w(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), kNoEdge));
  std::vector<int> nearest_boundary(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) {
    const auto& d = sp[static_cast<std::size_t>(i)].dist;
    for (int j = i + 1; j < s; ++j) {
      const double dij =
          d[static_cast<std::size_t>(syndromes[static_cast<std::size_t>(j)])];
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = dij;
      w[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = dij;
    }
    const double da = d[static_cast<std::size_t>(bd_a)];
    const double db = d[static_cast<std::size_t>(bd_b)];
    nearest_boundary[static_cast<std::size_t>(i)] = (da <= db) ? bd_a : bd_b;
    const double dbound = std::min(da, db);
    w[static_cast<std::size_t>(i)][static_cast<std::size_t>(s + i)] = dbound;
    w[static_cast<std::size_t>(s + i)][static_cast<std::size_t>(i)] = dbound;
    for (int j = i + 1; j < s; ++j) {
      w[static_cast<std::size_t>(s + i)][static_cast<std::size_t>(s + j)] = 0.0;
      w[static_cast<std::size_t>(s + j)][static_cast<std::size_t>(s + i)] = 0.0;
    }
  }

  const auto matching = min_weight_perfect_matching(n, w);
  for (int i = 0; i < s; ++i) {
    const int mate = matching.mate[static_cast<std::size_t>(i)];
    if (mate < s) {
      if (mate > i)
        apply_path(graph, sp[static_cast<std::size_t>(i)],
                   syndromes[static_cast<std::size_t>(i)],
                   syndromes[static_cast<std::size_t>(mate)], correction);
    } else {
      // Matched to the boundary: XOR the path to the nearer boundary vertex.
      apply_path(graph, sp[static_cast<std::size_t>(i)],
                 syndromes[static_cast<std::size_t>(i)],
                 nearest_boundary[static_cast<std::size_t>(i)], correction);
    }
  }
  return correction;
}

}  // namespace surfnet::decoder
