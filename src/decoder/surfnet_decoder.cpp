#include "decoder/surfnet_decoder.h"

#include <stdexcept>

#include "decoder/workspace.h"

namespace surfnet::decoder {

SurfNetDecoder::SurfNetDecoder(double step_size) : step_size_(step_size) {
  if (step_size <= 0.0)
    throw std::invalid_argument("SurfNetDecoder: step size must be positive");
}

std::vector<char> SurfNetDecoder::decode(const DecodeInput& input) const {
  DecodeWorkspace ws;
  return decode(input, ws);
}

const std::vector<char>& SurfNetDecoder::decode(const DecodeInput& input,
                                                DecodeWorkspace& ws) const {
  const qec::DecodingGraph& graph = *input.graph;
  effective_error_prob(input, ws.prob);

  // Erasure locations are perfectly known, so clusters are seeded with the
  // erased edges before growth starts (Algorithm 2 grows erasures at the
  // maximal speed; seeding them is that rule's limit and matches the
  // Union-Find/peeling heritage, where erasure components initialize the
  // clusters). This is what lets the decoder "prioritize locations with
  // erasures" (paper Sec. IV).
  ws.config.pregrown = input.erased;
  ws.config.speed.resize(graph.num_edges());
  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    // Algorithm 2 lines 4-6: grow by -r / ln(1 - rho) per round, where the
    // growth unit is inherited from the Union-Find decoder the routine is
    // adapted from — half an edge — so the per-round progress in whole-edge
    // units is r / (2 w) with w = -ln(P(error)).
    ws.config.speed[e] = 0.5 * step_size_ / edge_weight(ws.prob[e]);
  }
  const auto& region =
      grow_clusters(graph, input.syndrome, ws.config, ws.growth);
  return peel_correction(graph, region, input.syndrome, ws.peel);
}

}  // namespace surfnet::decoder
