#include "decoder/trial_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "util/stats.h"

namespace surfnet::decoder {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-worker accumulators, merged in worker order after the join.
struct WorkerTally {
  std::int64_t failures = 0;
  std::int64_t invalid = 0;
  std::int64_t valid_but_wrong = 0;
  double busy_seconds = 0.0;

  void add(const TrialOutcome& outcome) {
    if (outcome.failure) ++failures;
    if (outcome.invalid) ++invalid;
    if (outcome.valid_but_wrong) ++valid_but_wrong;
  }
};

/// Chunk size of the atomic work cursor: big enough to amortize contention,
/// small enough to balance load across uneven trial costs.
constexpr std::int64_t kChunk = 64;

}  // namespace

int resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

double TrialReport::error_rate() const {
  return trials > 0 ? static_cast<double>(failures) / static_cast<double>(trials)
                    : 0.0;
}

double TrialReport::error_rate_ci95() const {
  util::Proportion proportion;
  proportion.add_many(static_cast<std::size_t>(failures),
                      static_cast<std::size_t>(trials));
  return proportion.ci95();
}

double TrialReport::trials_per_sec() const {
  return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds : 0.0;
}

double TrialReport::ns_per_trial() const {
  return trials > 0 ? busy_seconds * 1e9 / static_cast<double>(trials) : 0.0;
}

TrialReport run_trials(std::int64_t trials,
                       const TrialRunnerOptions& options,
                       const std::function<TrialFn()>& make_worker) {
  if (trials < 0)
    throw std::invalid_argument("run_trials: negative trial count");

  const int workers = static_cast<int>(
      std::min<std::int64_t>(resolve_threads(options.threads),
                             std::max<std::int64_t>(trials, 1)));

  TrialReport report;
  report.trials = trials;
  report.threads = workers;

  const auto wall_start = Clock::now();
  std::atomic<std::int64_t> cursor{0};

  auto run_worker = [&](WorkerTally& tally) {
    const TrialFn trial_fn = make_worker();
    const auto busy_start = Clock::now();
    while (true) {
      const std::int64_t begin =
          cursor.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= trials) break;
      const std::int64_t end = std::min(begin + kChunk, trials);
      for (std::int64_t t = begin; t < end; ++t) {
        util::Rng rng(
            trial_seed(options.seed, static_cast<std::uint64_t>(t)));
        tally.add(trial_fn(t, rng));
      }
    }
    tally.busy_seconds = seconds_since(busy_start);
  };

  std::vector<WorkerTally> tallies(static_cast<std::size_t>(workers));
  if (workers == 1) {
    run_worker(tallies[0]);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (auto& tally : tallies)
      pool.emplace_back([&run_worker, &tally] { run_worker(tally); });
    for (auto& thread : pool) thread.join();
  }

  // Counts are sums of integers: the merge is exact and independent of how
  // chunks were interleaved across workers.
  for (const auto& tally : tallies) {
    report.failures += tally.failures;
    report.invalid += tally.invalid;
    report.valid_but_wrong += tally.valid_but_wrong;
    report.busy_seconds += tally.busy_seconds;
  }
  report.wall_seconds = seconds_since(wall_start);
  if (options.sink.metrics) {
    obs::MetricsRegistry& m = *options.sink.metrics;
    m.count("trials.count", report.trials);
    m.count("trials.failures", report.failures);
    m.count("trials.invalid", report.invalid);
    m.count("trials.valid_but_wrong", report.valid_but_wrong);
    m.time("trials.busy_seconds", report.busy_seconds);
    m.time("trials.wall_seconds", report.wall_seconds);
  }
  return report;
}

TrialReport run_logical_error_trials(const qec::CodeLattice& lattice,
                                     const qec::NoiseProfile& profile,
                                     qec::PauliChannel channel,
                                     const Decoder& decoder,
                                     std::int64_t trials,
                                     const TrialRunnerOptions& options) {
  return run_logical_error_trials(lattice, profile, channel,
                                  profile.component_error_prob(channel),
                                  decoder, trials, options);
}

TrialReport run_logical_error_trials(const qec::CodeLattice& lattice,
                                     const qec::NoiseProfile& profile,
                                     qec::PauliChannel channel,
                                     const std::vector<double>& prior,
                                     const Decoder& decoder,
                                     std::int64_t trials,
                                     const TrialRunnerOptions& options) {
  auto make_worker = [&]() -> TrialFn {
    // One workspace per worker thread; shared_ptr because std::function
    // requires a copyable callable. All per-trial buffers live inside.
    auto ws = std::make_shared<CodeTrialWorkspace>();
    return [&lattice, &profile, channel, &prior, &decoder,
            ws](std::int64_t, util::Rng& rng) {
      qec::sample_errors(profile, channel, rng, ws->sample);
      return TrialOutcome::from(
          decode_sample(lattice, ws->sample, prior, decoder, *ws));
    };
  };
  return run_trials(trials, options, make_worker);
}

}  // namespace surfnet::decoder
