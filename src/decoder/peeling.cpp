#include "decoder/peeling.h"

#include <stdexcept>

namespace surfnet::decoder {

std::vector<char> peel_correction(const qec::DecodingGraph& graph,
                                  const std::vector<char>& region,
                                  std::vector<char> syndrome) {
  if (region.size() != graph.num_edges())
    throw std::invalid_argument("peel: region size mismatch");
  if (syndrome.size() != static_cast<std::size_t>(graph.num_real_vertices()))
    throw std::invalid_argument("peel: syndrome size mismatch");

  const int nv = graph.num_vertices();
  std::vector<char> visited(static_cast<std::size_t>(nv), 0);

  // Tree edges in discovery order: (edge id, parent vertex, child vertex).
  struct TreeEdge {
    int edge;
    int parent;
    int child;
  };
  std::vector<TreeEdge> forest;
  forest.reserve(graph.num_edges());

  std::vector<int> stack;
  auto dfs_from = [&](int root) {
    stack.push_back(root);
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int e : graph.incident(u)) {
        if (!region[static_cast<std::size_t>(e)]) continue;
        const int v = graph.other_end(static_cast<std::size_t>(e), u);
        if (visited[static_cast<std::size_t>(v)]) continue;
        visited[static_cast<std::size_t>(v)] = 1;
        forest.push_back({e, u, v});
        stack.push_back(v);
      }
    }
  };

  // Boundary vertices are the preferred forest roots so that leftover
  // syndrome parity in boundary-touching components is absorbed there.
  // Mark all boundaries visited first so no boundary vertex becomes a child.
  for (int v = graph.num_real_vertices(); v < nv; ++v)
    visited[static_cast<std::size_t>(v)] = 1;
  for (int v = graph.num_real_vertices(); v < nv; ++v) dfs_from(v);
  for (int v = 0; v < graph.num_real_vertices(); ++v) {
    if (visited[static_cast<std::size_t>(v)]) continue;
    visited[static_cast<std::size_t>(v)] = 1;
    dfs_from(v);
  }

  // Peel leaves inward: reverse discovery order guarantees each child is
  // processed before its parent.
  std::vector<char> correction(graph.num_edges(), 0);
  for (auto it = forest.rbegin(); it != forest.rend(); ++it) {
    const int child = it->child;
    if (!syndrome[static_cast<std::size_t>(child)]) continue;
    correction[static_cast<std::size_t>(it->edge)] = 1;
    syndrome[static_cast<std::size_t>(child)] = 0;
    if (!graph.is_boundary(it->parent))
      syndrome[static_cast<std::size_t>(it->parent)] ^= 1;
  }

  for (char bit : syndrome)
    if (bit)
      throw std::logic_error(
          "peel: unmatched syndrome (region component has odd parity and no "
          "boundary)");
  return correction;
}

}  // namespace surfnet::decoder
