#include "decoder/peeling.h"

#include <stdexcept>

#include "decoder/validate.h"
#include "util/contracts.h"

namespace surfnet::decoder {

std::vector<char> peel_correction(const qec::DecodingGraph& graph,
                                  const std::vector<char>& region,
                                  std::vector<char> syndrome) {
  PeelWorkspace ws;
  return peel_correction(graph, region, syndrome, ws);
}

const std::vector<char>& peel_correction(const qec::DecodingGraph& graph,
                                         const std::vector<char>& region,
                                         const std::vector<char>& syndrome,
                                         PeelWorkspace& ws) {
  if (region.size() != graph.num_edges())
    throw std::invalid_argument("peel: region size mismatch");
  if (syndrome.size() != static_cast<std::size_t>(graph.num_real_vertices()))
    throw std::invalid_argument("peel: syndrome size mismatch");

  const int nv = graph.num_vertices();
  ws.visited.assign(static_cast<std::size_t>(nv), 0);
  ws.syndrome.assign(syndrome.begin(), syndrome.end());

  // Tree edges in discovery order: (edge id, parent vertex, child vertex).
  ws.forest.clear();
  ws.forest.reserve(graph.num_edges());

  ws.stack.clear();
  auto dfs_from = [&](int root) {
    ws.stack.push_back(root);
    while (!ws.stack.empty()) {
      const int u = ws.stack.back();
      ws.stack.pop_back();
      for (int e : graph.incident(u)) {
        if (!region[static_cast<std::size_t>(e)]) continue;
        const int v = graph.other_end(static_cast<std::size_t>(e), u);
        if (ws.visited[static_cast<std::size_t>(v)]) continue;
        ws.visited[static_cast<std::size_t>(v)] = 1;
        ws.forest.push_back({e, u, v});
        ws.stack.push_back(v);
      }
    }
  };

  // Boundary vertices are the preferred forest roots so that leftover
  // syndrome parity in boundary-touching components is absorbed there.
  // Mark all boundaries visited first so no boundary vertex becomes a child.
  for (int v = graph.num_real_vertices(); v < nv; ++v)
    ws.visited[static_cast<std::size_t>(v)] = 1;
  for (int v = graph.num_real_vertices(); v < nv; ++v) dfs_from(v);
  for (int v = 0; v < graph.num_real_vertices(); ++v) {
    if (ws.visited[static_cast<std::size_t>(v)]) continue;
    ws.visited[static_cast<std::size_t>(v)] = 1;
    dfs_from(v);
  }

  // Peel leaves inward: reverse discovery order guarantees each child is
  // processed before its parent.
  ws.correction.assign(graph.num_edges(), 0);
  for (auto it = ws.forest.rbegin(); it != ws.forest.rend(); ++it) {
    const int child = it->child;
    if (!ws.syndrome[static_cast<std::size_t>(child)]) continue;
    ws.correction[static_cast<std::size_t>(it->edge)] = 1;
    ws.syndrome[static_cast<std::size_t>(child)] = 0;
    if (!graph.is_boundary(it->parent))
      ws.syndrome[static_cast<std::size_t>(it->parent)] ^= 1;
  }

  for (char bit : ws.syndrome)
    if (bit)
      throw std::logic_error(
          "peel: unmatched syndrome (region component has odd parity and no "
          "boundary)");
#if SURFNET_CHECKS
  check_peel_invariants(graph, region, syndrome, ws.correction, ws.dbg_parity);
#endif
  return ws.correction;
}

}  // namespace surfnet::decoder
