#pragma once

// Common decoder interface. A decoder receives the decoding graph, the
// syndrome bitmap, the known erasure locations, and the per-edge prior
// error probabilities (1 - rho, with rho the estimated fidelity computed
// from the fibers a qubit travelled through — paper Sec. IV-C), and returns
// a per-edge correction whose syndrome must equal the input syndrome.

#include <string_view>
#include <vector>

#include "qec/graph.h"

namespace surfnet::decoder {

struct DecodeInput {
  const qec::DecodingGraph* graph = nullptr;
  std::vector<char> syndrome;       ///< bitmap over real vertices
  std::vector<char> erased;         ///< per edge: known erasure flag
  std::vector<double> error_prob;   ///< per edge: prior P(error), excl. erasure
};

/// Per-edge weight w = -ln(1 - rho) (paper Sec. IV-C): the negative log of
/// the edge's error probability. Erased edges use probability 1/2. The
/// probability is clamped away from {0, 1} for numerical safety.
double edge_weight(double error_prob);

/// Effective per-edge error probability: 1/2 on erased edges, the prior
/// otherwise.
std::vector<double> effective_error_prob(const DecodeInput& input);

/// Allocation-free variant: writes into `out` (resized to the edge count).
void effective_error_prob(const DecodeInput& input, std::vector<double>& out);

struct DecodeWorkspace;  // decoder/workspace.h

class Decoder {
 public:
  virtual ~Decoder() = default;

  /// Returns a per-edge correction with the same syndrome as the input.
  virtual std::vector<char> decode(const DecodeInput& input) const = 0;

  /// Workspace overload for hot loops: the correction is written into (and
  /// returned from) a buffer owned by `ws`, valid until the next decode
  /// with that workspace. Decoders that support allocation-free decoding
  /// override this; the default forwards to the allocating path.
  virtual const std::vector<char>& decode(const DecodeInput& input,
                                          DecodeWorkspace& ws) const;

  virtual std::string_view name() const = 0;
};

}  // namespace surfnet::decoder
