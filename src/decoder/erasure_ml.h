#pragma once

// Exact maximum-likelihood erasure decoder (Delfosse-Zemor, arXiv
// 1703.01517) with boundary-aware tie handling. Linear time in the erased
// region, exact ML over the quantum erasure channel at any distance —
// the production-grade replacement for the 2^E exhaustive enumerator
// above d = 3.
//
// Algorithm. On the erasure channel every erased edge flips with
// probability exactly 1/2, so all error configurations supported on the
// erased region that reproduce the syndrome are equiprobable: the ML
// decision reduces to a statement about homology classes. The decoder
//   1. builds a spanning forest of the erased subgraph rooted at boundary
//      vertices (identical construction — and identical edge discovery
//      order — to peel_correction, so the non-degenerate correction is
//      bitwise the peeling decoder's),
//   2. labels every forest vertex with a cut-parity potential: the XOR of
//      logical-cut flags along its tree path to the root, with all
//      boundary vertices identified as one super-root of potential 0
//      (this is the boundary-aware part: a path between two distinct
//      boundary vertices is a cycle of the super-rooted forest),
//   3. detects *degeneracy* — the erased region supports a logical
//      operator, so both homology classes carry exactly half the
//      solution mass — by scanning the non-tree erased edges: edge
//      (u, v) closes an odd cycle iff pot[u] ^ pot[v] ^ cut(u,v) is 1,
//   4. peels a correction out of the forest (leaves inward), and
//   5. on a degenerate erasure whose peeled correction lands in class 1,
//      XORs the recorded odd cycle (witness edge plus both endpoints'
//      root paths; shared segments cancel) into the correction, so ties
//      always resolve to class 0 — the same pinned tie-break as
//      decoder/exhaustive, making the two decoders equivalent including
//      tie handling wherever both run.
//
// Contract: like the plain peeling decoder, the syndrome must be
// explainable by the erased region alone (std::logic_error otherwise);
// per-edge priors are ignored — on the erasure channel they carry no
// information. Outside pure erasure the result is still a valid
// correction, but the ML claim only holds for the erasure channel.

#include <vector>

#include "decoder/decoder.h"
#include "qec/code_lattice.h"

namespace surfnet::decoder {

/// Reusable scratch for decode_erasure_ml; buffers only ever grow, so
/// steady-state decoding performs no heap allocations.
struct ErasureMlWorkspace {
  struct TreeEdge {
    int edge;
    int parent;
    int child;
  };
  std::vector<char> visited;
  std::vector<char> pot;          ///< cut parity of the tree path to root
  std::vector<int> parent_edge;   ///< -1 at roots and boundary vertices
  std::vector<int> parent_vertex;
  std::vector<char> in_tree;      ///< per edge: member of the forest
  std::vector<char> syndrome;     ///< mutable copy of the input bitmap
  std::vector<TreeEdge> forest;
  std::vector<int> stack;
  std::vector<char> correction;
};

/// Class decision attached to one erasure-ML decode.
struct ErasureMlInfo {
  /// The erased region supports a logical operator: both homology classes
  /// hold exactly half the solution mass and any class choice is ML.
  bool degenerate = false;
  /// Homology class of the returned correction: the unique solution class
  /// when non-degenerate, always 0 (pinned tie-break) when degenerate.
  int chosen_class = 0;
};

/// Decode `syndrome` over the erased region exact-ML. `cut_edges` is a
/// per-edge bitmap marking the lattice's logical cut (class = parity of a
/// chain over the cut). The correction is written into (and returned
/// from) `ws.correction`; `info`, when non-null, receives the class
/// decision. Throws std::logic_error when the syndrome is not confined to
/// the erased region.
const std::vector<char>& decode_erasure_ml(const qec::DecodingGraph& graph,
                                           const std::vector<char>& cut_edges,
                                           const std::vector<char>& erased,
                                           const std::vector<char>& syndrome,
                                           ErasureMlWorkspace& ws,
                                           ErasureMlInfo* info = nullptr);

/// Decision of the Decoder-interface adapter's introspective entry point.
struct ErasureMlDecision {
  std::vector<char> correction;
  ErasureMlInfo info;
};

/// Decoder-interface adapter. Borrows the lattice (graph resolution and
/// logical cuts); the caller keeps it alive. Selectable through the trial
/// runner and the speed bench exactly like UF/SurfNet/peeling.
class ErasureMlDecoder final : public Decoder {
 public:
  explicit ErasureMlDecoder(const qec::CodeLattice& lattice);

  std::vector<char> decode(const DecodeInput& input) const override;
  const std::vector<char>& decode(const DecodeInput& input,
                                  DecodeWorkspace& ws) const override;
  std::string_view name() const override { return "ErasureML"; }

  /// Decode with the class decision exposed (differential and property
  /// suites); same correction as decode().
  ErasureMlDecision decode_with_info(const DecodeInput& input) const;

 private:
  const std::vector<char>& cut_flags(const DecodeInput& input) const;

  const qec::CodeLattice* lattice_;
  std::vector<char> cut_flags_z_;  ///< per-edge logical-cut bitmap, Z graph
  std::vector<char> cut_flags_x_;  ///< per-edge logical-cut bitmap, X graph
};

}  // namespace surfnet::decoder
