#include "decoder/decoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "decoder/workspace.h"

namespace surfnet::decoder {

double edge_weight(double error_prob) {
  const double clamped = std::clamp(error_prob, 1e-10, 1.0 - 1e-10);
  return -std::log(clamped);
}

std::vector<double> effective_error_prob(const DecodeInput& input) {
  std::vector<double> prob;
  effective_error_prob(input, prob);
  return prob;
}

void effective_error_prob(const DecodeInput& input,
                          std::vector<double>& out) {
  if (input.graph == nullptr)
    throw std::invalid_argument("DecodeInput: null graph");
  const std::size_t m = input.graph->num_edges();
  if (input.erased.size() != m || input.error_prob.size() != m)
    throw std::invalid_argument("DecodeInput: per-edge size mismatch");
  out.resize(m);
  for (std::size_t e = 0; e < m; ++e)
    out[e] = input.erased[e] ? 0.5 : input.error_prob[e];
}

const std::vector<char>& Decoder::decode(const DecodeInput& input,
                                         DecodeWorkspace& ws) const {
  ws.correction = decode(input);
  return ws.correction;
}

}  // namespace surfnet::decoder
