#include "decoder/blossom.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <stdexcept>

namespace surfnet::decoder {

namespace {

using ll = std::int64_t;
constexpr ll kInf = std::numeric_limits<ll>::max() / 4;
constexpr double kScale = 1e6;

/// O(n^3) maximum-weight general matching (primal-dual with blossoms).
/// Vertices are 1-indexed internally; ids (n, 2n] are blossoms.
class MaxWeightMatcher {
 public:
  explicit MaxWeightMatcher(int n)
      : n_(n),
        cap_(2 * n + 1),
        g_(static_cast<std::size_t>(cap_),
           std::vector<Edge>(static_cast<std::size_t>(cap_))),
        lab_(static_cast<std::size_t>(cap_), 0),
        match_(static_cast<std::size_t>(cap_), 0),
        slack_(static_cast<std::size_t>(cap_), 0),
        st_(static_cast<std::size_t>(cap_), 0),
        pa_(static_cast<std::size_t>(cap_), 0),
        s_(static_cast<std::size_t>(cap_), -1),
        vis_(static_cast<std::size_t>(cap_), 0),
        flo_(static_cast<std::size_t>(cap_)),
        flo_from_(static_cast<std::size_t>(cap_),
                  std::vector<int>(static_cast<std::size_t>(n_ + 1), 0)) {
    for (int u = 0; u < cap_; ++u)
      for (int v = 0; v < cap_; ++v)
        g_[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] =
            Edge{u, v, 0};
  }

  /// w > 0; zero weight means no edge.
  void add_edge(int u, int v, ll w) {
    edge(u, v).w = w;
    edge(v, u).w = w;
  }

  /// Runs the matching; returns pairs matched. match(v)==0 means unmatched.
  int solve() {
    std::fill(match_.begin() + 1, match_.begin() + n_ + 1, 0);
    n_x_ = n_;
    int n_matches = 0;
    for (int u = 0; u <= n_; ++u) {
      st_[static_cast<std::size_t>(u)] = u;
      flo_[static_cast<std::size_t>(u)].clear();
    }
    ll w_max = 0;
    for (int u = 1; u <= n_; ++u)
      for (int v = 1; v <= n_; ++v) {
        flo_from_[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] =
            (u == v ? u : 0);
        w_max = std::max(w_max, edge(u, v).w);
      }
    for (int u = 1; u <= n_; ++u) lab_[static_cast<std::size_t>(u)] = w_max;
    while (matching()) ++n_matches;
    return n_matches;
  }

  int match(int v) const { return match_[static_cast<std::size_t>(v)]; }

 private:
  struct Edge {
    int u = 0, v = 0;
    ll w = 0;
  };

  Edge& edge(int u, int v) {
    return g_[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
  }

  ll e_delta(const Edge& e) const {
    return lab_[static_cast<std::size_t>(e.u)] +
           lab_[static_cast<std::size_t>(e.v)] -
           g_[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)].w *
               2;
  }

  void update_slack(int u, int x) {
    auto& sx = slack_[static_cast<std::size_t>(x)];
    if (!sx || e_delta(edge(u, x)) < e_delta(edge(sx, x))) sx = u;
  }

  void set_slack(int x) {
    slack_[static_cast<std::size_t>(x)] = 0;
    for (int u = 1; u <= n_; ++u)
      if (edge(u, x).w > 0 && st_[static_cast<std::size_t>(u)] != x &&
          s_[static_cast<std::size_t>(st_[static_cast<std::size_t>(u)])] == 0)
        update_slack(u, x);
  }

  void q_push(int x) {
    if (x <= n_) {
      q_.push_back(x);
    } else {
      for (int t : flo_[static_cast<std::size_t>(x)]) q_push(t);
    }
  }

  void set_st(int x, int b) {
    st_[static_cast<std::size_t>(x)] = b;
    if (x > n_)
      for (int t : flo_[static_cast<std::size_t>(x)]) set_st(t, b);
  }

  int get_pr(int b, int xr) {
    auto& f = flo_[static_cast<std::size_t>(b)];
    const int pr =
        static_cast<int>(std::find(f.begin(), f.end(), xr) - f.begin());
    if (pr % 2 == 1) {
      std::reverse(f.begin() + 1, f.end());
      return static_cast<int>(f.size()) - pr;
    }
    return pr;
  }

  void set_match(int u, int v) {
    match_[static_cast<std::size_t>(u)] = edge(u, v).v;
    if (u <= n_) return;
    const Edge e = edge(u, v);
    const int xr =
        flo_from_[static_cast<std::size_t>(u)][static_cast<std::size_t>(e.u)];
    const int pr = get_pr(u, xr);
    auto& f = flo_[static_cast<std::size_t>(u)];
    for (int i = 0; i < pr; ++i) set_match(f[static_cast<std::size_t>(i)],
                                           f[static_cast<std::size_t>(i ^ 1)]);
    set_match(xr, v);
    std::rotate(f.begin(), f.begin() + pr, f.end());
  }

  void augment(int u, int v) {
    while (true) {
      const int xnv =
          st_[static_cast<std::size_t>(match_[static_cast<std::size_t>(u)])];
      set_match(u, v);
      if (!xnv) return;
      set_match(xnv, st_[static_cast<std::size_t>(pa_[static_cast<std::size_t>(
                        xnv)])]);
      u = st_[static_cast<std::size_t>(pa_[static_cast<std::size_t>(xnv)])];
      v = xnv;
    }
  }

  int get_lca(int u, int v) {
    for (++timer_; u || v; std::swap(u, v)) {
      if (u == 0) continue;
      if (vis_[static_cast<std::size_t>(u)] == timer_) return u;
      vis_[static_cast<std::size_t>(u)] = timer_;
      u = st_[static_cast<std::size_t>(match_[static_cast<std::size_t>(u)])];
      if (u)
        u = st_[static_cast<std::size_t>(pa_[static_cast<std::size_t>(u)])];
    }
    return 0;
  }

  void add_blossom(int u, int lca, int v) {
    int b = n_ + 1;
    while (b <= n_x_ && st_[static_cast<std::size_t>(b)]) ++b;
    if (b > n_x_) ++n_x_;
    lab_[static_cast<std::size_t>(b)] = 0;
    s_[static_cast<std::size_t>(b)] = 0;
    match_[static_cast<std::size_t>(b)] =
        match_[static_cast<std::size_t>(lca)];
    auto& f = flo_[static_cast<std::size_t>(b)];
    f.clear();
    f.push_back(lca);
    for (int x = u, y; x != lca;
         x = st_[static_cast<std::size_t>(pa_[static_cast<std::size_t>(y)])]) {
      f.push_back(x);
      y = st_[static_cast<std::size_t>(match_[static_cast<std::size_t>(x)])];
      f.push_back(y);
      q_push(y);
    }
    std::reverse(f.begin() + 1, f.end());
    for (int x = v, y; x != lca;
         x = st_[static_cast<std::size_t>(pa_[static_cast<std::size_t>(y)])]) {
      f.push_back(x);
      y = st_[static_cast<std::size_t>(match_[static_cast<std::size_t>(x)])];
      f.push_back(y);
      q_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x_; ++x) {
      edge(b, x).w = 0;
      edge(x, b).w = 0;
    }
    for (int x = 1; x <= n_; ++x)
      flo_from_[static_cast<std::size_t>(b)][static_cast<std::size_t>(x)] = 0;
    for (const int xs : f) {
      for (int x = 1; x <= n_x_; ++x)
        if (edge(b, x).w == 0 || e_delta(edge(xs, x)) < e_delta(edge(b, x))) {
          edge(b, x) = edge(xs, x);
          edge(x, b) = edge(x, xs);
        }
      for (int x = 1; x <= n_; ++x)
        if (flo_from_[static_cast<std::size_t>(xs)]
                     [static_cast<std::size_t>(x)])
          flo_from_[static_cast<std::size_t>(b)][static_cast<std::size_t>(x)] =
              xs;
    }
    set_slack(b);
  }

  void expand_blossom(int b) {
    auto& f = flo_[static_cast<std::size_t>(b)];
    for (const int t : f) set_st(t, t);
    const int xr =
        flo_from_[static_cast<std::size_t>(b)][static_cast<std::size_t>(
            edge(b, pa_[static_cast<std::size_t>(b)]).u)];
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
      const int xs = f[static_cast<std::size_t>(i)];
      const int xns = f[static_cast<std::size_t>(i + 1)];
      pa_[static_cast<std::size_t>(xs)] = edge(xns, xs).u;
      s_[static_cast<std::size_t>(xs)] = 1;
      s_[static_cast<std::size_t>(xns)] = 0;
      slack_[static_cast<std::size_t>(xs)] = 0;
      set_slack(xns);
      q_push(xns);
    }
    s_[static_cast<std::size_t>(xr)] = 1;
    pa_[static_cast<std::size_t>(xr)] = pa_[static_cast<std::size_t>(b)];
    for (std::size_t i = static_cast<std::size_t>(pr) + 1; i < f.size(); ++i) {
      const int xs = f[i];
      s_[static_cast<std::size_t>(xs)] = -1;
      set_slack(xs);
    }
    st_[static_cast<std::size_t>(b)] = 0;
  }

  bool on_found_edge(const Edge& e) {
    const int u = st_[static_cast<std::size_t>(e.u)];
    const int v = st_[static_cast<std::size_t>(e.v)];
    if (s_[static_cast<std::size_t>(v)] == -1) {
      pa_[static_cast<std::size_t>(v)] = e.u;
      s_[static_cast<std::size_t>(v)] = 1;
      const int nu =
          st_[static_cast<std::size_t>(match_[static_cast<std::size_t>(v)])];
      slack_[static_cast<std::size_t>(v)] = 0;
      slack_[static_cast<std::size_t>(nu)] = 0;
      s_[static_cast<std::size_t>(nu)] = 0;
      q_push(nu);
    } else if (s_[static_cast<std::size_t>(v)] == 0) {
      const int lca = get_lca(u, v);
      if (!lca) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }

  bool matching() {
    std::fill(s_.begin() + 1, s_.begin() + n_x_ + 1, -1);
    std::fill(slack_.begin() + 1, slack_.begin() + n_x_ + 1, 0);
    q_.clear();
    for (int x = 1; x <= n_x_; ++x)
      if (st_[static_cast<std::size_t>(x)] == x &&
          !match_[static_cast<std::size_t>(x)]) {
        pa_[static_cast<std::size_t>(x)] = 0;
        s_[static_cast<std::size_t>(x)] = 0;
        q_push(x);
      }
    if (q_.empty()) return false;
    while (true) {
      while (!q_.empty()) {
        const int u = q_.front();
        q_.pop_front();
        if (s_[static_cast<std::size_t>(st_[static_cast<std::size_t>(u)])] ==
            1)
          continue;
        for (int v = 1; v <= n_; ++v)
          if (edge(u, v).w > 0 && st_[static_cast<std::size_t>(u)] !=
                                      st_[static_cast<std::size_t>(v)]) {
            if (e_delta(edge(u, v)) == 0) {
              if (on_found_edge(edge(u, v))) return true;
            } else {
              update_slack(u, st_[static_cast<std::size_t>(v)]);
            }
          }
      }
      ll d = kInf;
      for (int b = n_ + 1; b <= n_x_; ++b)
        if (st_[static_cast<std::size_t>(b)] == b &&
            s_[static_cast<std::size_t>(b)] == 1)
          d = std::min(d, lab_[static_cast<std::size_t>(b)] / 2);
      for (int x = 1; x <= n_x_; ++x)
        if (st_[static_cast<std::size_t>(x)] == x &&
            slack_[static_cast<std::size_t>(x)]) {
          const Edge& se = edge(slack_[static_cast<std::size_t>(x)], x);
          if (s_[static_cast<std::size_t>(x)] == -1)
            d = std::min(d, e_delta(se));
          else if (s_[static_cast<std::size_t>(x)] == 0)
            d = std::min(d, e_delta(se) / 2);
        }
      for (int u = 1; u <= n_; ++u) {
        const int root = st_[static_cast<std::size_t>(u)];
        if (s_[static_cast<std::size_t>(root)] == 0) {
          if (lab_[static_cast<std::size_t>(u)] <= d) return false;
          lab_[static_cast<std::size_t>(u)] -= d;
        } else if (s_[static_cast<std::size_t>(root)] == 1) {
          lab_[static_cast<std::size_t>(u)] += d;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b)
        if (st_[static_cast<std::size_t>(b)] == b) {
          if (s_[static_cast<std::size_t>(b)] == 0)
            lab_[static_cast<std::size_t>(b)] += d * 2;
          else if (s_[static_cast<std::size_t>(b)] == 1)
            lab_[static_cast<std::size_t>(b)] -= d * 2;
        }
      q_.clear();
      for (int x = 1; x <= n_x_; ++x)
        if (st_[static_cast<std::size_t>(x)] == x &&
            slack_[static_cast<std::size_t>(x)] &&
            st_[static_cast<std::size_t>(slack_[static_cast<std::size_t>(x)])] !=
                x &&
            e_delta(edge(slack_[static_cast<std::size_t>(x)], x)) == 0)
          if (on_found_edge(edge(slack_[static_cast<std::size_t>(x)], x)))
            return true;
      for (int b = n_ + 1; b <= n_x_; ++b)
        if (st_[static_cast<std::size_t>(b)] == b &&
            s_[static_cast<std::size_t>(b)] == 1 &&
            lab_[static_cast<std::size_t>(b)] == 0)
          expand_blossom(b);
    }
  }

  int n_;
  int cap_;
  int n_x_ = 0;
  int timer_ = 0;
  std::vector<std::vector<Edge>> g_;
  std::vector<ll> lab_;
  std::vector<int> match_;
  std::vector<int> slack_;
  std::vector<int> st_;
  std::vector<int> pa_;
  std::vector<int> s_;
  std::vector<int> vis_;
  std::vector<std::vector<int>> flo_;
  std::vector<std::vector<int>> flo_from_;
  std::deque<int> q_;
};

}  // namespace

MatchingResult min_weight_perfect_matching(
    int n, const std::vector<std::vector<double>>& weight) {
  if (n < 0 || weight.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("matching: bad weight matrix");
  if (n % 2 != 0)
    throw std::invalid_argument("matching: odd number of vertices");
  MatchingResult result;
  result.mate.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return result;

  // Scale to integers and transform min -> max: w' = C - w.
  ll max_scaled = 0;
  for (int i = 0; i < n; ++i) {
    if (weight[static_cast<std::size_t>(i)].size() !=
        static_cast<std::size_t>(n))
      throw std::invalid_argument("matching: bad weight matrix row");
    for (int j = 0; j < n; ++j) {
      const double w = weight[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(j)];
      if (w == kNoEdge || i == j) continue;
      if (w < 0.0) throw std::invalid_argument("matching: negative weight");
      max_scaled =
          std::max(max_scaled, static_cast<ll>(std::llround(w * kScale)));
    }
  }
  // C must be large enough that any perfect matching (n/2 edges, each of
  // transformed weight >= C - max_scaled) outweighs any non-perfect matching
  // (at most n/2 - 1 edges, each <= C): C > (n/2) * max_scaled suffices.
  const ll big = max_scaled * (static_cast<ll>(n) / 2 + 1) + 1;

  MaxWeightMatcher matcher(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double w =
          weight[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (w == kNoEdge) continue;
      const ll scaled = static_cast<ll>(std::llround(w * kScale));
      matcher.add_edge(i + 1, j + 1, big - scaled);
    }
  const int pairs = matcher.solve();
  if (pairs * 2 != n)
    throw std::runtime_error("matching: no perfect matching exists");

  for (int i = 0; i < n; ++i) {
    const int m = matcher.match(i + 1);
    if (m == 0) throw std::runtime_error("matching: vertex left unmatched");
    result.mate[static_cast<std::size_t>(i)] = m - 1;
    if (m - 1 > i)
      result.total_weight += weight[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(m - 1)];
  }
  return result;
}

}  // namespace surfnet::decoder
