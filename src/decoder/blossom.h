#pragma once

// Exact minimum-weight perfect matching on a general graph (the "Blossom"
// step of the paper's Algorithm 1, ref. [37]).
//
// Internally this is the classic O(n^3) primal-dual maximum-weight general
// matching algorithm (multiple alternating trees, blossom shrinking, dual
// adjustment with integral duals). Minimum-weight perfect matching on a
// graph where a perfect matching exists is obtained by the standard
// transform w' = C - w with C > max w: with all transformed weights
// positive, a maximum-weight matching on an even-order graph admitting a
// perfect matching is perfect, and among perfect matchings maximizing
// sum(C - w) minimizes sum(w).
//
// Double weights are scaled to integers (kScale) so the dual updates stay
// exact; the quantization error is negligible for decoding purposes.

#include <limits>
#include <vector>

namespace surfnet::decoder {

/// Marker for an absent edge in the weight matrix.
inline constexpr double kNoEdge = std::numeric_limits<double>::infinity();

struct MatchingResult {
  std::vector<int> mate;  ///< mate[v] is v's partner; size n
  double total_weight = 0.0;
};

/// Computes a minimum-weight perfect matching of the n-vertex graph whose
/// symmetric weight matrix is `weight` (kNoEdge = absent). Requires n even
/// and that a perfect matching exists; throws std::invalid_argument or
/// std::runtime_error otherwise. O(n^3).
MatchingResult min_weight_perfect_matching(
    int n, const std::vector<std::vector<double>>& weight);

}  // namespace surfnet::decoder
