#pragma once

// Debug invariant validators for the cluster decoders (Union-Find family).
// grow_clusters and peel_correction call these on their own results when
// SURFNET_CHECKS is on; tests call them directly against deliberately
// corrupted state to prove each check fires. A broken invariant reports
// through util/contracts.h (abort by default, ContractViolation under the
// test handler).

#include <vector>

#include "decoder/cluster_growth.h"
#include "qec/graph.h"

namespace surfnet::decoder {

/// Post-growth cluster invariants (paper Algorithm 2 / ref. [32]):
///   * region/growth consistency: an edge is in the region iff its growth
///     reached a full edge (pregrown/erased edges are absorbed at 1.0);
///   * fusion closure: the real endpoints of every region edge share a DSU
///     root, and DSU cluster sizes match the actual member counts;
///   * parity: each root's parity flag equals the XOR of the syndrome bits
///     of its members;
///   * boundary flags: a root is marked boundary-touching iff some region
///     edge leaves the cluster into a boundary vertex;
///   * termination: no odd-parity cluster remains without a boundary.
/// `ws` is mutated only through DSU path compression.
void check_growth_invariants(const qec::DecodingGraph& graph,
                             const std::vector<char>& syndrome,
                             const GrowthConfig& config, GrowthWorkspace& ws);

/// Post-peeling invariants (Delfosse-Zemor): the correction is supported
/// on the region, and flipping its edges reproduces the syndrome exactly
/// (per real vertex, the parity of incident correction edges equals the
/// syndrome bit). The overload with `scratch` performs no allocations once
/// the scratch buffer is warm (peel_correction passes its workspace's).
void check_peel_invariants(const qec::DecodingGraph& graph,
                           const std::vector<char>& region,
                           const std::vector<char>& syndrome,
                           const std::vector<char>& correction);
void check_peel_invariants(const qec::DecodingGraph& graph,
                           const std::vector<char>& region,
                           const std::vector<char>& syndrome,
                           const std::vector<char>& correction,
                           std::vector<char>& scratch);

}  // namespace surfnet::decoder
