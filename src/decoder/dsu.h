#pragma once

// Disjoint-set union with union-by-size and path compression: the
// O(alpha(n)) substrate behind cluster fusion in the Union-Find and SurfNet
// decoders (paper Theorem 2).

#include <cstddef>
#include <numeric>
#include <vector>

#include "util/contracts.h"

namespace surfnet::decoder {

class Dsu {
 public:
  explicit Dsu(std::size_t n = 0) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Reinitialize to n singleton sets, reusing the existing storage.
  void reset(std::size_t n) {
    parent_.resize(n);
    size_.assign(n, 1);
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t num_elements() const { return parent_.size(); }

  int find(int x) {
    SURFNET_EXPECTS(x >= 0 && static_cast<std::size_t>(x) < parent_.size(),
                    "element %d of %zu", x, parent_.size());
    int root = x;
    while (parent_[static_cast<std::size_t>(root)] != root)
      root = parent_[static_cast<std::size_t>(root)];
    while (parent_[static_cast<std::size_t>(x)] != root) {
      const int next = parent_[static_cast<std::size_t>(x)];
      parent_[static_cast<std::size_t>(x)] = root;
      x = next;
    }
    return root;
  }

  /// Union the sets of a and b; returns the surviving root, or -1 when the
  /// two were already in the same set.
  int unite(int a, int b) {
    SURFNET_EXPECTS(a >= 0 && static_cast<std::size_t>(a) < parent_.size());
    SURFNET_EXPECTS(b >= 0 && static_cast<std::size_t>(b) < parent_.size());
    a = find(a);
    b = find(b);
    if (a == b) return -1;
    if (size_[static_cast<std::size_t>(a)] <
        size_[static_cast<std::size_t>(b)])
      std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] +=
        size_[static_cast<std::size_t>(b)];
    return a;
  }

  bool same(int a, int b) { return find(a) == find(b); }

  std::size_t size_of(int x) {
    SURFNET_EXPECTS(x >= 0 && static_cast<std::size_t>(x) < parent_.size());
    return size_[static_cast<std::size_t>(find(x))];
  }

 private:
  std::vector<int> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace surfnet::decoder
