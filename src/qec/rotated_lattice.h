#pragma once

// Rotated surface code of odd distance d — the modern standard layout,
// using only d^2 data qubits for the same code distance (the paper
// mentions such variants in Sec. III-B; this is the library's extension
// beyond the unrotated layout it evaluates).
//
// Data qubits sit on a d x d grid. Stabilizer plaquettes occupy the cells
// between them in a checkerboard pattern: a cell with corner (pr, pc)
// (top-left data qubit (pr, pc), cells indexed pr, pc in [-1, d-1]) is
// Z-type when pr + pc is odd and X-type when even. Interior cells weigh 4;
// on the lattice edge only half-plaquettes of the matching type survive:
// X-type on the top/bottom rows, Z-type on the left/right columns. The
// missing Z-cells along the top and bottom are this layout's Z-graph
// boundaries (logical X runs vertically); left/right are the X-graph
// boundaries (logical Z runs horizontally).

#include <vector>

#include "qec/code_lattice.h"

namespace surfnet::qec {

class RotatedSurfaceCodeLattice final : public CodeLattice {
 public:
  /// Build a rotated lattice of odd distance d >= 3.
  explicit RotatedSurfaceCodeLattice(int distance);

  int distance() const override { return d_; }
  int num_data_qubits() const override { return d_ * d_; }
  int num_stabilizers(GraphKind kind) const {
    return graph(kind).num_real_vertices();
  }

  Coord data_coord(int q) const override { return {q / d_, q % d_}; }
  int data_index(Coord rc) const {
    if (rc.r < 0 || rc.c < 0 || rc.r >= d_ || rc.c >= d_) return -1;
    return rc.r * d_ + rc.c;
  }

  const DecodingGraph& graph(GraphKind k) const override {
    return k == GraphKind::Z ? z_graph_ : x_graph_;
  }
  const std::vector<int>& logical_cut(GraphKind k) const override {
    return k == GraphKind::Z ? z_cut_ : x_cut_;
  }

  /// Logical X: the central column (a vertical chain between the Z-graph
  /// boundaries); logical Z: the central row.
  std::vector<int> logical_operator(GraphKind k) const override;

  /// Central cross: middle row plus middle column, 2d-1 Core qubits.
  CoreSupportPartition core_partition() const override;

 private:
  int d_;
  DecodingGraph z_graph_;
  DecodingGraph x_graph_;
  std::vector<int> z_cut_;
  std::vector<int> x_cut_;
};

}  // namespace surfnet::qec
