#pragma once

// Debug invariant validators for code lattices and decoding graphs. Each
// check_* function walks the whole structure and reports the first broken
// invariant through the contract layer (util/contracts.h), so a validator
// "firing" means SURFNET_ASSERT failing: print-and-abort by default, or a
// ContractViolation under the test handler.
//
// The lattice constructors invoke check_lattice_invariants on themselves
// when SURFNET_CHECKS is on; tests call the validators directly against
// deliberately corrupted structures to prove each check fires.

#include "qec/code_lattice.h"
#include "qec/graph.h"

namespace surfnet::qec {

/// Structural invariants of one decoding graph: endpoint ranges, boundary
/// classification, and edge-list/incidence-index consistency.
void check_graph_invariants(const DecodingGraph& graph);

/// Full lattice validation through the CodeLattice interface:
///   * both decoding graphs pass check_graph_invariants;
///   * one edge per data qubit with edge index == data-qubit index;
///   * data-qubit coordinates are pairwise distinct;
///   * each logical cut is nonempty, in range, and crossed an odd number
///     of times by the representative logical operator;
///   * the Core/Support partition counts are consistent with its mask.
/// Layout-specific counts (d^2 + (d-1)^2 for the unrotated planar code,
/// d^2 for the rotated code) are asserted by the concrete constructors.
void check_lattice_invariants(const CodeLattice& lattice);

}  // namespace surfnet::qec
