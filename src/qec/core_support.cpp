#include "qec/core_support.h"

namespace surfnet::qec {

CoreSupportPartition make_core_support(const CodeLattice& lattice) {
  return lattice.core_partition();
}

}  // namespace surfnet::qec
