#include "qec/rotated_lattice.h"

#include <stdexcept>
#include <vector>

#include "qec/validate.h"
#include "util/contracts.h"

namespace surfnet::qec {

namespace {

int parity(int pr, int pc) { return ((pr + pc) % 2 + 2) % 2; }

/// Is the cell with top-left corner (pr, pc) an included stabilizer of the
/// requested type? Z cells have odd parity; X cells even. Half-plaquettes
/// survive only on the matching boundary (X: top/bottom, Z: left/right).
bool cell_included(int pr, int pc, bool z_type, int d) {
  const bool is_z = parity(pr, pc) == 1;
  if (is_z != z_type) return false;
  const bool top = pr == -1, bottom = pr == d - 1;
  const bool left = pc == -1, right = pc == d - 1;
  if ((top || bottom) && (left || right)) return false;  // corner
  if (top || bottom) return !z_type && pc >= 0 && pc <= d - 2;
  if (left || right) return z_type && pr >= 0 && pr <= d - 2;
  return true;  // interior
}

}  // namespace

RotatedSurfaceCodeLattice::RotatedSurfaceCodeLattice(int distance)
    : d_(distance) {
  if (d_ < 3 || d_ % 2 == 0)
    throw std::invalid_argument(
        "rotated surface code distance must be odd and >= 3");

  for (const bool z_type : {true, false}) {
    // Number the included cells of this type. Cell corners range over
    // [-1, d-1]^2, so a flat (d+1)x(d+1) table indexed by the shifted
    // coordinates replaces an ordered map (-1 = excluded).
    const int side = d_ + 1;
    const auto cell_slot = [side](int pr, int pc) {
      return static_cast<std::size_t>((pr + 1) * side + (pc + 1));
    };
    std::vector<int> cell_id(static_cast<std::size_t>(side * side), -1);
    int num_real = 0;
    for (int pr = -1; pr <= d_ - 1; ++pr)
      for (int pc = -1; pc <= d_ - 1; ++pc)
        if (cell_included(pr, pc, z_type, d_))
          cell_id[cell_slot(pr, pc)] = num_real++;
    const BoundaryIds boundary{num_real, num_real + 1};
    std::vector<GraphEdge> edges;
    std::vector<int> cut;
    edges.reserve(static_cast<std::size_t>(num_data_qubits()));

    // Each data qubit (r, c) touches exactly two same-type cells: the
    // diagonal pair {(r-1,c-1),(r,c)} when its parity matches the type,
    // otherwise the anti-diagonal pair {(r-1,c),(r,c-1)}.
    for (int q = 0; q < num_data_qubits(); ++q) {
      const int r = q / d_, c = q % d_;
      const bool diagonal = (parity(r, c) == 1) == z_type;
      const std::pair<int, int> cells[2] = {
          diagonal ? std::pair<int, int>{r - 1, c - 1}
                   : std::pair<int, int>{r - 1, c},
          diagonal ? std::pair<int, int>{r, c}
                   : std::pair<int, int>{r, c - 1}};
      GraphEdge edge;
      edge.data_qubit = q;
      int ends[2];
      bool touches_first_boundary = false;
      for (int i = 0; i < 2; ++i) {
        const int id = cell_id[cell_slot(cells[i].first, cells[i].second)];
        if (id >= 0) {
          ends[i] = id;
          continue;
        }
        // Excluded same-type cells lie on this graph's two boundaries:
        // Z cells on the top/bottom rows, X cells on the left/right
        // columns.
        const bool first = z_type ? (cells[i].first == -1)
                                  : (cells[i].second == -1);
        ends[i] = first ? boundary.first : boundary.second;
        if (first) touches_first_boundary = true;
      }
      if (ends[0] == ends[1])
        throw std::logic_error("rotated lattice: degenerate edge");
      edge.u = ends[0];
      edge.v = ends[1];
      edges.push_back(edge);
      if (touches_first_boundary) cut.push_back(q);
    }

    if (z_type) {
      z_graph_ = DecodingGraph(num_real, boundary, std::move(edges));
      z_cut_ = std::move(cut);
    } else {
      x_graph_ = DecodingGraph(num_real, boundary, std::move(edges));
      x_cut_ = std::move(cut);
    }
  }

  // Rotated layout: d^2 data qubits, (d^2 - 1) / 2 stabilizers per type.
  SURFNET_ENSURES(num_data_qubits() == d_ * d_, "%d data qubits for distance %d",
                  num_data_qubits(), d_);
  SURFNET_ENSURES(z_graph_.num_real_vertices() == (d_ * d_ - 1) / 2 &&
                      x_graph_.num_real_vertices() == (d_ * d_ - 1) / 2,
                  "%d + %d stabilizers for distance %d",
                  z_graph_.num_real_vertices(), x_graph_.num_real_vertices(),
                  d_);
#if SURFNET_CHECKS
  check_lattice_invariants(*this);
#endif
}

std::vector<int> RotatedSurfaceCodeLattice::logical_operator(
    GraphKind k) const {
  // Logical X (Z-graph): the central column, top to bottom; logical Z
  // (X-graph): the central row.
  const int mid = (d_ - 1) / 2;
  std::vector<int> chain;
  for (int t = 0; t < d_; ++t)
    chain.push_back(k == GraphKind::Z ? data_index({t, mid})
                                      : data_index({mid, t}));
  return chain;
}

CoreSupportPartition RotatedSurfaceCodeLattice::core_partition() const {
  const int mid = (d_ - 1) / 2;
  CoreSupportPartition part;
  part.is_core.assign(static_cast<std::size_t>(num_data_qubits()), 0);
  for (int q = 0; q < num_data_qubits(); ++q) {
    const Coord rc = data_coord(q);
    if (rc.r == mid || rc.c == mid) {
      part.is_core[static_cast<std::size_t>(q)] = 1;
      ++part.num_core;
    }
  }
  part.num_support = num_data_qubits() - part.num_core;
  return part;
}

}  // namespace surfnet::qec
