#pragma once

// Abstract surface-code lattice: everything the decoders, the syndrome
// machinery and the Core/Support partition need, independent of the
// concrete layout (unrotated planar or rotated).

#include <vector>

#include "qec/graph.h"

namespace surfnet::qec {

struct Coord {
  int r = 0;
  int c = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

enum class GraphKind { Z, X };

struct CoreSupportPartition {
  std::vector<char> is_core;  ///< per data qubit; char to avoid vector<bool>
  int num_core = 0;
  int num_support = 0;
};

class CodeLattice {
 public:
  virtual ~CodeLattice() = default;

  virtual int distance() const = 0;
  virtual int num_data_qubits() const = 0;

  /// Decoding graph of one stabilizer type. Edge i of each graph carries
  /// `data_qubit` pointing back into [0, num_data_qubits()); by contract,
  /// edge index == data-qubit index.
  virtual const DecodingGraph& graph(GraphKind kind) const = 0;

  /// Data qubits forming a minimal cut that every logical chain of `kind`
  /// crosses an odd number of times.
  virtual const std::vector<int>& logical_cut(GraphKind kind) const = 0;

  /// A representative boundary-to-boundary logical operator chain.
  virtual std::vector<int> logical_operator(GraphKind kind) const = 0;

  /// Grid coordinate of a data qubit (layout specific; used for display
  /// and for the Core cross).
  virtual Coord data_coord(int q) const = 0;

  /// The fixed cross-shaped Core/Support partition (paper Sec. IV).
  virtual CoreSupportPartition core_partition() const = 0;
};

}  // namespace surfnet::qec
