#pragma once

// Single-qubit Pauli algebra. A Pauli error on a data qubit is one of
// {I, X, Y, Z}; global phases are irrelevant for error correction, so the
// group law here is multiplication modulo phase (i.e. the Klein four-group
// on the (x, z) symplectic bits).

#include <cstdint>
#include <string_view>

namespace surfnet::qec {

enum class Pauli : std::uint8_t { I = 0, X = 1, Z = 2, Y = 3 };

/// X-component bit: true for X and Y. These are the errors detected by
/// Z-type stabilizers (the primal decoding graph).
constexpr bool has_x(Pauli p) {
  return (static_cast<std::uint8_t>(p) & 1u) != 0;
}

/// Z-component bit: true for Z and Y. Detected by X-type stabilizers.
constexpr bool has_z(Pauli p) {
  return (static_cast<std::uint8_t>(p) & 2u) != 0;
}

/// Build a Pauli from its symplectic components.
constexpr Pauli make_pauli(bool x_component, bool z_component) {
  return static_cast<Pauli>((x_component ? 1u : 0u) | (z_component ? 2u : 0u));
}

/// Group multiplication modulo phase: XOR of symplectic bits.
constexpr Pauli operator*(Pauli a, Pauli b) {
  return static_cast<Pauli>(static_cast<std::uint8_t>(a) ^
                            static_cast<std::uint8_t>(b));
}

constexpr std::string_view to_string(Pauli p) {
  switch (p) {
    case Pauli::I: return "I";
    case Pauli::X: return "X";
    case Pauli::Z: return "Z";
    case Pauli::Y: return "Y";
  }
  return "?";
}

}  // namespace surfnet::qec
