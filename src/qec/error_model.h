#pragma once

// Error model of SurfNet (paper Sec. IV): i.i.d. Pauli errors plus erasure
// errors, with per-qubit rates. Measurements are error-free and decoherence
// is handled by error-mitigation at nodes, so neither is modelled here.
//
// An erased data qubit is substituted by a maximally mixed state: it is
// re-initialized and subjected to a Pauli chosen uniformly from {I, X, Y, Z}
// (paper Sec. IV), so each error component is flipped with probability 1/2
// at an erasure — hence the decoders' estimated fidelity of 0.5 there.

#include <vector>

#include "qec/core_support.h"
#include "qec/lattice.h"
#include "qec/pauli.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace surfnet::qec {

/// How Pauli noise of rate p is distributed over {X, Y, Z}.
enum class PauliChannel {
  /// X and Z components flip independently, each with probability p.
  /// This is the channel used for the Fig. 8 threshold study.
  IndependentXZ,
  /// With probability p, apply one of {X, Y, Z} uniformly.
  Depolarizing,
};

struct QubitNoise {
  double pauli = 0.0;    ///< Pauli noise rate p for this qubit
  double erasure = 0.0;  ///< erasure probability for this qubit
};

/// Per-data-qubit noise rates for one surface code.
class NoiseProfile {
 public:
  NoiseProfile() = default;
  explicit NoiseProfile(std::vector<QubitNoise> per_qubit)
      : per_qubit_(std::move(per_qubit)) {}

  /// Identical rates on every data qubit.
  static NoiseProfile uniform(int num_qubits, double pauli, double erasure);

  /// Paper Fig. 8 setup: Support qubits get (pauli, erasure) and Core
  /// qubits get both rates halved.
  static NoiseProfile core_support(const CoreSupportPartition& partition,
                                   double pauli, double erasure);

  int num_qubits() const { return static_cast<int>(per_qubit_.size()); }
  const QubitNoise& qubit(int q) const {
    SURFNET_EXPECTS(q >= 0 && static_cast<std::size_t>(q) < per_qubit_.size());
    return per_qubit_[static_cast<std::size_t>(q)];
  }
  QubitNoise& qubit(int q) {
    SURFNET_EXPECTS(q >= 0 && static_cast<std::size_t>(q) < per_qubit_.size());
    return per_qubit_[static_cast<std::size_t>(q)];
  }

  /// Probability that one tracked error component (X-type or Z-type) is
  /// flipped by the *Pauli* noise alone (erasures excluded), per qubit.
  /// This is what decoders use as prior error probability 1 - rho.
  std::vector<double> component_error_prob(PauliChannel channel) const;

 private:
  std::vector<QubitNoise> per_qubit_;
};

/// One sampled error configuration on a surface code.
struct ErrorSample {
  std::vector<Pauli> error;  ///< per data qubit
  std::vector<char> erased;  ///< per data qubit (known erasure flags)
};

/// Draw an error configuration. Erasure is sampled first; an erased qubit's
/// error is uniform over {I, X, Y, Z} regardless of its Pauli rate.
ErrorSample sample_errors(const NoiseProfile& profile, PauliChannel channel,
                          util::Rng& rng);

/// Allocation-free variant: fills `out`, reusing its buffers. Draws the
/// same random-variate sequence as the allocating overload.
void sample_errors(const NoiseProfile& profile, PauliChannel channel,
                   util::Rng& rng, ErrorSample& out);

}  // namespace surfnet::qec
