#include "qec/error_model.h"

#include <stdexcept>

namespace surfnet::qec {

NoiseProfile NoiseProfile::uniform(int num_qubits, double pauli,
                                   double erasure) {
  if (num_qubits < 0) throw std::invalid_argument("negative qubit count");
  return NoiseProfile(std::vector<QubitNoise>(
      static_cast<std::size_t>(num_qubits), QubitNoise{pauli, erasure}));
}

NoiseProfile NoiseProfile::core_support(const CoreSupportPartition& partition,
                                        double pauli, double erasure) {
  std::vector<QubitNoise> rates(partition.is_core.size());
  for (std::size_t q = 0; q < rates.size(); ++q) {
    const double scale = partition.is_core[q] ? 0.5 : 1.0;
    rates[q] = QubitNoise{pauli * scale, erasure * scale};
  }
  return NoiseProfile(std::move(rates));
}

std::vector<double> NoiseProfile::component_error_prob(
    PauliChannel channel) const {
  std::vector<double> prob(per_qubit_.size());
  for (std::size_t q = 0; q < per_qubit_.size(); ++q) {
    const double p = per_qubit_[q].pauli;
    // IndependentXZ flips each component with probability p; depolarizing
    // flips a given component for 2 of the 3 equally likely Paulis.
    prob[q] = (channel == PauliChannel::IndependentXZ) ? p : 2.0 * p / 3.0;
  }
  return prob;
}

ErrorSample sample_errors(const NoiseProfile& profile, PauliChannel channel,
                          util::Rng& rng) {
  ErrorSample sample;
  sample_errors(profile, channel, rng, sample);
  return sample;
}

void sample_errors(const NoiseProfile& profile, PauliChannel channel,
                   util::Rng& rng, ErrorSample& sample) {
  const auto n = static_cast<std::size_t>(profile.num_qubits());
  sample.error.assign(n, Pauli::I);
  sample.erased.assign(n, 0);
  for (std::size_t q = 0; q < n; ++q) {
    const auto& noise = profile.qubit(static_cast<int>(q));
    if (rng.bernoulli(noise.erasure)) {
      sample.erased[q] = 1;
      sample.error[q] = static_cast<Pauli>(rng.below(4));
      continue;
    }
    if (channel == PauliChannel::IndependentXZ) {
      const bool x = rng.bernoulli(noise.pauli);
      const bool z = rng.bernoulli(noise.pauli);
      sample.error[q] = make_pauli(x, z);
    } else {
      if (rng.bernoulli(noise.pauli)) {
        // Uniform over {X, Y, Z}: enum values 1..3.
        sample.error[q] = static_cast<Pauli>(1 + rng.below(3));
      }
    }
  }
}

}  // namespace surfnet::qec
