#include "qec/lattice.h"

#include <stdexcept>

#include "qec/validate.h"
#include "util/contracts.h"

namespace surfnet::qec {

namespace {

/// Vertex id of the measure-Z qubit at (r even, c odd).
int zid(int r, int c, int d) { return (r / 2) * (d - 1) + (c - 1) / 2; }

/// Vertex id of the measure-X qubit at (r odd, c even).
int xid(int r, int c, int d) { return ((r - 1) / 2) * d + c / 2; }

}  // namespace

SurfaceCodeLattice::SurfaceCodeLattice(int distance) : d_(distance) {
  if (d_ < 2) throw std::invalid_argument("surface code distance must be >= 2");
  const int n = side();
  coord_to_data_.assign(static_cast<std::size_t>(n) * n, -1);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if ((r + c) % 2 != 0) continue;  // not a data site
      coord_to_data_[static_cast<std::size_t>(r) * n + c] =
          static_cast<int>(data_coords_.size());
      data_coords_.push_back({r, c});
    }
  }

  // --- Z-graph: vertices are measure-Z qubits, boundaries WEST/EAST. ---
  {
    const int num_real = num_measure_z();
    const BoundaryIds boundary{num_real, num_real + 1};
    std::vector<GraphEdge> edges;
    edges.reserve(data_coords_.size());
    for (int q = 0; q < num_data_qubits(); ++q) {
      const auto [r, c] = data_coords_[static_cast<std::size_t>(q)];
      GraphEdge e;
      e.data_qubit = q;
      if (r % 2 == 0) {
        // Horizontal edge between same-row measure-Z qubits.
        e.u = (c == 0) ? boundary.first : zid(r, c - 1, d_);
        e.v = (c == n - 1) ? boundary.second : zid(r, c + 1, d_);
      } else {
        // Vertical edge between same-column measure-Z qubits.
        e.u = zid(r - 1, c, d_);
        e.v = zid(r + 1, c, d_);
      }
      edges.push_back(e);
      if (r % 2 == 0 && c == 0) z_cut_.push_back(q);
    }
    z_graph_ = DecodingGraph(num_real, boundary, std::move(edges));
  }

  // --- X-graph: vertices are measure-X qubits, boundaries NORTH/SOUTH. ---
  {
    const int num_real = num_measure_x();
    const BoundaryIds boundary{num_real, num_real + 1};
    std::vector<GraphEdge> edges;
    edges.reserve(data_coords_.size());
    for (int q = 0; q < num_data_qubits(); ++q) {
      const auto [r, c] = data_coords_[static_cast<std::size_t>(q)];
      GraphEdge e;
      e.data_qubit = q;
      if (r % 2 == 0) {
        // Vertical edge between same-column measure-X qubits.
        e.u = (r == 0) ? boundary.first : xid(r - 1, c, d_);
        e.v = (r == n - 1) ? boundary.second : xid(r + 1, c, d_);
      } else {
        // Horizontal edge between same-row measure-X qubits.
        e.u = xid(r, c - 1, d_);
        e.v = xid(r, c + 1, d_);
      }
      edges.push_back(e);
      if (r % 2 == 0 && r == 0) x_cut_.push_back(q);
    }
    x_graph_ = DecodingGraph(num_real, boundary, std::move(edges));
  }

  // Paper Fig. 2(a): d^2 site + (d-1)^2 cell data qubits, d(d-1) measure
  // qubits per stabilizer type.
  SURFNET_ENSURES(num_data_qubits() == d_ * d_ + (d_ - 1) * (d_ - 1),
                  "%d data qubits for distance %d", num_data_qubits(), d_);
  SURFNET_ENSURES(num_measure_z() + num_measure_x() == 2 * d_ * (d_ - 1),
                  "%d measure qubits for distance %d",
                  num_measure_z() + num_measure_x(), d_);
#if SURFNET_CHECKS
  check_lattice_invariants(*this);
#endif
}

int SurfaceCodeLattice::data_index(Coord rc) const {
  const int n = side();
  if (rc.r < 0 || rc.c < 0 || rc.r >= n || rc.c >= n) return -1;
  return coord_to_data_[static_cast<std::size_t>(rc.r) * n + rc.c];
}

CoreSupportPartition SurfaceCodeLattice::core_partition() const {
  // Central even coordinate: d-1 when d is odd (exact center), d otherwise.
  const int center = (d_ % 2 == 1) ? d_ - 1 : d_;
  CoreSupportPartition part;
  part.is_core.assign(static_cast<std::size_t>(num_data_qubits()), 0);
  for (int q = 0; q < num_data_qubits(); ++q) {
    const Coord rc = data_coord(q);
    const bool site = (rc.r % 2 == 0);  // (even, even) data qubit
    if (site && (rc.c == center || rc.r == center)) {
      part.is_core[static_cast<std::size_t>(q)] = 1;
      ++part.num_core;
    }
  }
  part.num_support = num_data_qubits() - part.num_core;
  return part;
}

std::vector<int> SurfaceCodeLattice::logical_operator(GraphKind k) const {
  std::vector<int> chain;
  const int n = side();
  for (int t = 0; t < n; t += 2) {
    // Logical X: west-east chain along row 0; logical Z: north-south chain
    // along column 0.
    const Coord rc = (k == GraphKind::Z) ? Coord{0, t} : Coord{t, 0};
    chain.push_back(data_index(rc));
  }
  return chain;
}

}  // namespace surfnet::qec
