#include "qec/validate.h"

#include <cstddef>

#include "util/contracts.h"

namespace surfnet::qec {

void check_graph_invariants(const DecodingGraph& graph) {
  const int nv = graph.num_vertices();
  const int nreal = graph.num_real_vertices();
  SURFNET_ASSERT(nreal >= 0 && nreal <= nv, "real=%d vertices=%d", nreal, nv);

  const BoundaryIds boundary = graph.boundary();
  if (boundary.first >= 0)
    SURFNET_ASSERT(graph.is_boundary(boundary.first) && boundary.first < nv,
                   "boundary.first=%d", boundary.first);
  if (boundary.second >= 0)
    SURFNET_ASSERT(graph.is_boundary(boundary.second) && boundary.second < nv,
                   "boundary.second=%d", boundary.second);

  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    SURFNET_ASSERT(edge.u >= 0 && edge.u < nv && edge.v >= 0 && edge.v < nv,
                   "edge %zu endpoints (%d, %d) out of [0, %d)", e, edge.u,
                   edge.v, nv);
    SURFNET_ASSERT(!(graph.is_boundary(edge.u) && graph.is_boundary(edge.v)),
                   "edge %zu connects two boundary vertices", e);
  }

  // Incidence index <-> edge list consistency: every incident edge lists
  // the vertex as an endpoint, and every edge appears under each distinct
  // endpoint exactly once.
  std::size_t incident_total = 0;
  for (int v = 0; v < nv; ++v) {
    for (const int e : graph.incident(v)) {
      SURFNET_ASSERT(e >= 0 && static_cast<std::size_t>(e) < graph.num_edges(),
                     "vertex %d lists edge %d outside [0, %zu)", v, e,
                     graph.num_edges());
      const GraphEdge& edge = graph.edge(static_cast<std::size_t>(e));
      SURFNET_ASSERT(edge.u == v || edge.v == v,
                     "vertex %d lists edge %d it is not an endpoint of", v, e);
      ++incident_total;
    }
  }
  std::size_t endpoint_total = 0;
  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    endpoint_total += (edge.u == edge.v) ? 1u : 2u;
  }
  SURFNET_ASSERT(incident_total == endpoint_total,
                 "incidence index holds %zu entries for %zu edge endpoints",
                 incident_total, endpoint_total);
}

namespace {

void check_cut(const CodeLattice& lattice, GraphKind kind) {
  const auto& cut = lattice.logical_cut(kind);
  const int nq = lattice.num_data_qubits();
  SURFNET_ASSERT(!cut.empty(), "logical cut is empty");
  std::vector<char> in_cut(static_cast<std::size_t>(nq), 0);
  for (const int q : cut) {
    SURFNET_ASSERT(q >= 0 && q < nq, "cut qubit %d outside [0, %d)", q, nq);
    SURFNET_ASSERT(!in_cut[static_cast<std::size_t>(q)],
                   "cut lists qubit %d twice", q);
    in_cut[static_cast<std::size_t>(q)] = 1;
  }
  int crossings = 0;
  for (const int q : lattice.logical_operator(kind)) {
    SURFNET_ASSERT(q >= 0 && q < nq,
                   "logical operator qubit %d outside [0, %d)", q, nq);
    crossings += in_cut[static_cast<std::size_t>(q)];
  }
  SURFNET_ASSERT(crossings % 2 == 1,
                 "logical operator crosses its cut %d times (must be odd)",
                 crossings);
}

}  // namespace

void check_lattice_invariants(const CodeLattice& lattice) {
  SURFNET_ASSERT(lattice.distance() >= 2, "distance=%d", lattice.distance());
  const int nq = lattice.num_data_qubits();
  SURFNET_ASSERT(nq >= 1, "num_data_qubits=%d", nq);

  for (const GraphKind kind : {GraphKind::Z, GraphKind::X}) {
    const DecodingGraph& graph = lattice.graph(kind);
    check_graph_invariants(graph);
    SURFNET_ASSERT(graph.num_edges() == static_cast<std::size_t>(nq),
                   "%zu edges for %d data qubits", graph.num_edges(), nq);
    for (std::size_t e = 0; e < graph.num_edges(); ++e)
      SURFNET_ASSERT(graph.edge(e).data_qubit == static_cast<int>(e),
                     "edge %zu carries data qubit %d (contract: edge index == "
                     "data-qubit index)",
                     e, graph.edge(e).data_qubit);
    check_cut(lattice, kind);
  }

  for (int a = 0; a < nq; ++a)
    for (int b = a + 1; b < nq; ++b)
      SURFNET_ASSERT(!(lattice.data_coord(a) == lattice.data_coord(b)),
                     "data qubits %d and %d share a coordinate", a, b);

  const CoreSupportPartition part = lattice.core_partition();
  SURFNET_ASSERT(part.is_core.size() == static_cast<std::size_t>(nq),
                 "core mask covers %zu of %d qubits", part.is_core.size(), nq);
  int core = 0;
  for (const char bit : part.is_core) core += bit ? 1 : 0;
  SURFNET_ASSERT(core == part.num_core, "mask has %d core qubits, count says %d",
                 core, part.num_core);
  SURFNET_ASSERT(part.num_core + part.num_support == nq,
                 "core %d + support %d != %d", part.num_core, part.num_support,
                 nq);
  SURFNET_ASSERT(part.num_core >= 1, "empty core partition");
}

}  // namespace surfnet::qec
