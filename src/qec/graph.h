#pragma once

// Decoding graph shared by every decoder in SurfNet.
//
// A decoding graph G = {V, E, W} (paper Sec. IV-C) has one vertex per
// measurement qubit of a given type plus two *virtual boundary vertices*,
// and one edge per data qubit. An error on a data qubit flips the syndrome
// of the measurement qubits at its edge's endpoints; flips on boundary
// vertices are absorbed (boundaries are not measured).
//
// Edge weights W encode per-qubit fidelity: w = -ln(1 - rho) where rho is
// the estimated probability of NO error on that qubit, so likelier errors
// get smaller weights and shortest paths are maximum-likelihood chains.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/contracts.h"

namespace surfnet::qec {

/// Identifies one of the two virtual boundary vertices of a planar graph.
struct BoundaryIds {
  int first = -1;
  int second = -1;
};

struct GraphEdge {
  int u = -1;          ///< endpoint vertex (may be a boundary vertex)
  int v = -1;          ///< endpoint vertex (may be a boundary vertex)
  int data_qubit = -1; ///< index of the data qubit this edge represents
};

/// An undirected multigraph with designated boundary vertices, stored as an
/// edge list plus a CSR-style adjacency index. Vertices [0, num_real) are
/// measurement qubits; boundary vertices come after.
class DecodingGraph {
 public:
  DecodingGraph() = default;

  /// Construct from an edge list. `num_real` is the number of measurement
  /// vertices; `boundary` vertices must be >= num_real.
  DecodingGraph(int num_real, BoundaryIds boundary,
                std::vector<GraphEdge> edges);

  int num_real_vertices() const { return num_real_; }
  int num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edges_.size(); }
  BoundaryIds boundary() const { return boundary_; }

  bool is_boundary(int vertex) const { return vertex >= num_real_; }

  const GraphEdge& edge(std::size_t e) const {
    SURFNET_EXPECTS(e < edges_.size());
    return edges_[e];
  }
  const std::vector<GraphEdge>& edges() const { return edges_; }

  /// Edge indices incident to `vertex`.
  std::span<const int> incident(int vertex) const {
    SURFNET_EXPECTS(vertex >= 0 &&
                    static_cast<std::size_t>(vertex) + 1 < offsets_.size());
    return {incidence_.data() + offsets_[static_cast<std::size_t>(vertex)],
            offsets_[static_cast<std::size_t>(vertex) + 1] -
                offsets_[static_cast<std::size_t>(vertex)]};
  }

  /// The endpoint of edge `e` that is not `vertex`.
  int other_end(std::size_t e, int vertex) const {
    SURFNET_EXPECTS(e < edges_.size());
    const auto& ed = edges_[e];
    if (ed.u == vertex) return ed.v;
    if (ed.v == vertex) return ed.u;
    throw std::logic_error("other_end: vertex not on edge");
  }

 private:
  int num_real_ = 0;
  int num_vertices_ = 0;
  BoundaryIds boundary_;
  std::vector<GraphEdge> edges_;
  std::vector<std::size_t> offsets_;  // size num_vertices_+1
  std::vector<int> incidence_;        // edge indices
};

}  // namespace surfnet::qec
