#pragma once

// ASCII rendering of surface-code lattices and error configurations —
// the debugging companion to the decoder stack. Renders the paper's
// Fig. 2/3-style pictures in a terminal:
//
//   .   o   .   o   B        o  data qubit      X/Y/Z  Pauli error
//     Z   X                  #  erased qubit    *      syndrome
//   o   .   o   .            Z/X stabilizer     +      correction edge
//
// Works for any CodeLattice whose data_coord() lays qubits on a grid
// (both the planar and rotated lattices do).

#include <string>
#include <vector>

#include "qec/code_lattice.h"
#include "qec/error_model.h"
#include "qec/pauli.h"

namespace surfnet::qec {

/// Render the static lattice: data-qubit sites and the stabilizers of one
/// graph (vertices labelled Z or X), on the data-coordinate grid.
std::string render_lattice(const CodeLattice& lattice);

/// Render one error configuration: Pauli letters at erroring qubits, '#'
/// at erasures, '*' at the induced syndromes of `kind`, and optionally
/// '+' at correction edges.
std::string render_errors(const CodeLattice& lattice, GraphKind kind,
                          const ErrorSample& sample,
                          const std::vector<char>* correction = nullptr);

/// Render the Core/Support partition: 'C' at Core qubits, 'o' elsewhere.
std::string render_core(const CodeLattice& lattice);

}  // namespace surfnet::qec
