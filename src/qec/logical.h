#pragma once

// Logical-error verification (paper Sec. III-C / Fig. 3). A correction is
// *valid* when the residual error (actual flips XOR correction) has empty
// syndrome: the residual is then a union of cycles and boundary-to-boundary
// chains. The correction *fails logically* when a residual chain connects
// the two boundaries, which happens iff the residual crosses the lattice's
// logical cut an odd number of times.

#include <vector>

#include "qec/graph.h"
#include "qec/code_lattice.h"

namespace surfnet::qec {

/// XOR of two per-edge indicator vectors.
std::vector<char> residual(const std::vector<char>& flips,
                           const std::vector<char>& correction);

/// True when `correction` reproduces the syndrome of `flips` exactly
/// (i.e. the residual has no syndrome).
bool correction_valid(const DecodingGraph& graph,
                      const std::vector<char>& flips,
                      const std::vector<char>& correction);

/// Parity of `residual_edges` over the lattice's logical cut for `kind`.
/// Only meaningful when the residual has empty syndrome.
bool logical_flip(const CodeLattice& lattice, GraphKind kind,
                  const std::vector<char>& residual_edges);

/// Outcome of decoding one graph of one code.
struct DecodeOutcome {
  bool valid = false;    ///< correction matched the syndrome
  bool logical = false;  ///< residual implements a logical operator
  bool success() const { return valid && !logical; }
};

/// Convenience: evaluate a correction against the true flips.
DecodeOutcome evaluate_correction(const CodeLattice& lattice,
                                  GraphKind kind,
                                  const std::vector<char>& flips,
                                  const std::vector<char>& correction);

/// Reusable scratch for the allocation-free evaluate_correction overload.
struct EvalScratch {
  std::vector<char> residual;
  std::vector<char> syndrome;
};

/// Allocation-free variant for hot trial loops.
DecodeOutcome evaluate_correction(const CodeLattice& lattice, GraphKind kind,
                                  const std::vector<char>& flips,
                                  const std::vector<char>& correction,
                                  EvalScratch& scratch);

}  // namespace surfnet::qec
