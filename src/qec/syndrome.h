#pragma once

// Syndrome extraction (paper Sec. III-C, with the error-free measurement
// assumption). A data-qubit error whose component matches a graph's type
// flips the measurement outcome of the edge's two endpoint stabilizers;
// flips at virtual boundary vertices are absorbed.

#include <vector>

#include "qec/graph.h"
#include "qec/code_lattice.h"
#include "qec/pauli.h"

namespace surfnet::qec {

/// Per-edge flip indicator for one decoding graph: edge e of graph `kind`
/// is flipped when its data qubit carries the component that graph detects
/// (X-type for the Z-graph, Z-type for the X-graph).
std::vector<char> edge_flips(const CodeLattice& lattice, GraphKind kind,
                             const std::vector<Pauli>& error);

/// Allocation-free variant: writes into `out` (resized to the edge count).
void edge_flips(const CodeLattice& lattice, GraphKind kind,
                const std::vector<Pauli>& error, std::vector<char>& out);

/// Per-real-vertex syndrome bitmap from per-edge flips.
std::vector<char> syndrome_bitmap(const DecodingGraph& graph,
                                  const std::vector<char>& flips);

/// Allocation-free variant: writes into `out` (resized to the real-vertex
/// count).
void syndrome_bitmap(const DecodingGraph& graph,
                     const std::vector<char>& flips, std::vector<char>& out);

/// Sorted list of syndrome vertex ids (the decoder input sigma).
std::vector<int> syndrome_vertices(const DecodingGraph& graph,
                                   const std::vector<char>& flips);

/// Per-edge erasure indicator for one decoding graph from per-qubit flags.
std::vector<char> erased_edges(const CodeLattice& lattice,
                               GraphKind kind,
                               const std::vector<char>& erased_qubits);

/// Allocation-free variant: writes into `out` (resized to the edge count).
void erased_edges(const CodeLattice& lattice, GraphKind kind,
                  const std::vector<char>& erased_qubits,
                  std::vector<char>& out);

}  // namespace surfnet::qec
