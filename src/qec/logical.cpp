#include "qec/logical.h"

#include <stdexcept>

#include "qec/syndrome.h"

namespace surfnet::qec {

std::vector<char> residual(const std::vector<char>& flips,
                           const std::vector<char>& correction) {
  if (flips.size() != correction.size())
    throw std::invalid_argument("residual: size mismatch");
  std::vector<char> out(flips.size());
  for (std::size_t e = 0; e < flips.size(); ++e)
    out[e] = static_cast<char>((flips[e] ^ correction[e]) & 1);
  return out;
}

bool correction_valid(const DecodingGraph& graph,
                      const std::vector<char>& flips,
                      const std::vector<char>& correction) {
  const auto res = residual(flips, correction);
  for (char bit : syndrome_bitmap(graph, res))
    if (bit) return false;
  return true;
}

bool logical_flip(const CodeLattice& lattice, GraphKind kind,
                  const std::vector<char>& residual_edges) {
  const DecodingGraph& graph = lattice.graph(kind);
  if (residual_edges.size() != graph.num_edges())
    throw std::invalid_argument("logical_flip: size mismatch");
  // Edge index equals data-qubit index by construction; assert via lookup.
  bool parity = false;
  for (int q : lattice.logical_cut(kind))
    parity ^= (residual_edges[static_cast<std::size_t>(q)] != 0);
  return parity;
}

DecodeOutcome evaluate_correction(const CodeLattice& lattice,
                                  GraphKind kind,
                                  const std::vector<char>& flips,
                                  const std::vector<char>& correction) {
  EvalScratch scratch;
  return evaluate_correction(lattice, kind, flips, correction, scratch);
}

DecodeOutcome evaluate_correction(const CodeLattice& lattice, GraphKind kind,
                                  const std::vector<char>& flips,
                                  const std::vector<char>& correction,
                                  EvalScratch& scratch) {
  if (flips.size() != correction.size())
    throw std::invalid_argument("evaluate_correction: size mismatch");
  const DecodingGraph& graph = lattice.graph(kind);
  scratch.residual.resize(flips.size());
  for (std::size_t e = 0; e < flips.size(); ++e)
    scratch.residual[e] = static_cast<char>((flips[e] ^ correction[e]) & 1);
  syndrome_bitmap(graph, scratch.residual, scratch.syndrome);
  DecodeOutcome outcome;
  outcome.valid = true;
  for (char bit : scratch.syndrome)
    if (bit) {
      outcome.valid = false;
      break;
    }
  if (outcome.valid)
    outcome.logical = logical_flip(lattice, kind, scratch.residual);
  return outcome;
}

}  // namespace surfnet::qec
