#include "qec/render.h"

#include <algorithm>

#include "qec/lattice.h"
#include "qec/syndrome.h"

namespace surfnet::qec {

namespace {

/// Character canvas over data coordinates (rows x cols of the lattice).
class Canvas {
 public:
  explicit Canvas(const CodeLattice& lattice) {
    int max_r = 0, max_c = 0;
    for (int q = 0; q < lattice.num_data_qubits(); ++q) {
      const Coord rc = lattice.data_coord(q);
      max_r = std::max(max_r, rc.r);
      max_c = std::max(max_c, rc.c);
    }
    rows_ = max_r + 1;
    cols_ = max_c + 1;
    cells_.assign(static_cast<std::size_t>(rows_) * cols_, ' ');
  }

  void put(Coord rc, char ch) {
    if (rc.r < 0 || rc.c < 0 || rc.r >= rows_ || rc.c >= cols_) return;
    cells_[static_cast<std::size_t>(rc.r) * cols_ + rc.c] = ch;
  }

  std::string str() const {
    std::string out;
    out.reserve(static_cast<std::size_t>(rows_) * (2 * cols_ + 1));
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        out += cells_[static_cast<std::size_t>(r) * cols_ + c];
        if (c + 1 < cols_) out += ' ';
      }
      out += '\n';
    }
    return out;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<char> cells_;
};

/// Grid coordinate of a measurement vertex of the planar lattice, or
/// nullptr-equivalent (-1,-1) for virtual boundaries / other layouts.
Coord planar_vertex_coord(const SurfaceCodeLattice& lattice, GraphKind kind,
                          int vertex) {
  const int d = lattice.distance();
  if (vertex >= lattice.graph(kind).num_real_vertices()) return {-1, -1};
  if (kind == GraphKind::Z) {
    // measure-Z at (even r, odd c): id = (r/2)*(d-1) + (c-1)/2
    const int row = vertex / (d - 1);
    const int col = vertex % (d - 1);
    return {2 * row, 2 * col + 1};
  }
  // measure-X at (odd r, even c): id = ((r-1)/2)*d + c/2
  const int row = vertex / d;
  const int col = vertex % d;
  return {2 * row + 1, 2 * col};
}

}  // namespace

std::string render_lattice(const CodeLattice& lattice) {
  Canvas canvas(lattice);
  for (int q = 0; q < lattice.num_data_qubits(); ++q)
    canvas.put(lattice.data_coord(q), 'o');
  if (const auto* planar =
          dynamic_cast<const SurfaceCodeLattice*>(&lattice)) {
    for (int v = 0; v < planar->num_measure_z(); ++v)
      canvas.put(planar_vertex_coord(*planar, GraphKind::Z, v), 'Z');
    for (int v = 0; v < planar->num_measure_x(); ++v)
      canvas.put(planar_vertex_coord(*planar, GraphKind::X, v), 'X');
  }
  return canvas.str();
}

std::string render_errors(const CodeLattice& lattice, GraphKind kind,
                          const ErrorSample& sample,
                          const std::vector<char>* correction) {
  Canvas canvas(lattice);
  for (int q = 0; q < lattice.num_data_qubits(); ++q) {
    const Coord rc = lattice.data_coord(q);
    char ch = '.';
    if (sample.erased[static_cast<std::size_t>(q)]) {
      ch = '#';
    } else if (sample.error[static_cast<std::size_t>(q)] != Pauli::I) {
      ch = to_string(sample.error[static_cast<std::size_t>(q)])[0];
    }
    if (correction != nullptr &&
        (*correction)[static_cast<std::size_t>(q)] && ch == '.')
      ch = '+';
    canvas.put(rc, ch);
  }

  const auto flips = edge_flips(lattice, kind, sample.error);
  const auto syndromes = syndrome_vertices(lattice.graph(kind), flips);
  if (const auto* planar =
          dynamic_cast<const SurfaceCodeLattice*>(&lattice)) {
    // The planar layout has room for '*' markers at the measurement sites.
    for (int v : syndromes)
      canvas.put(planar_vertex_coord(*planar, kind, v), '*');
    return canvas.str();
  }
  // Other layouts: list the syndrome vertex ids below the grid.
  std::string out = canvas.str();
  out += "syndromes:";
  for (int v : syndromes) out += ' ' + std::to_string(v);
  out += '\n';
  return out;
}

std::string render_core(const CodeLattice& lattice) {
  const auto partition = lattice.core_partition();
  Canvas canvas(lattice);
  for (int q = 0; q < lattice.num_data_qubits(); ++q)
    canvas.put(lattice.data_coord(q),
               partition.is_core[static_cast<std::size_t>(q)] ? 'C' : 'o');
  return canvas.str();
}

}  // namespace surfnet::qec
