#include "qec/syndrome.h"

#include <stdexcept>

namespace surfnet::qec {

std::vector<char> edge_flips(const CodeLattice& lattice, GraphKind kind,
                             const std::vector<Pauli>& error) {
  std::vector<char> flips;
  edge_flips(lattice, kind, error, flips);
  return flips;
}

void edge_flips(const CodeLattice& lattice, GraphKind kind,
                const std::vector<Pauli>& error, std::vector<char>& out) {
  const DecodingGraph& graph = lattice.graph(kind);
  if (error.size() != graph.num_edges())
    throw std::invalid_argument("edge_flips: error size mismatch");
  out.assign(graph.num_edges(), 0);
  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    const Pauli p = error[static_cast<std::size_t>(graph.edge(e).data_qubit)];
    const bool detected = (kind == GraphKind::Z) ? has_x(p) : has_z(p);
    out[e] = detected ? 1 : 0;
  }
}

std::vector<char> syndrome_bitmap(const DecodingGraph& graph,
                                  const std::vector<char>& flips) {
  std::vector<char> syndrome;
  syndrome_bitmap(graph, flips, syndrome);
  return syndrome;
}

void syndrome_bitmap(const DecodingGraph& graph,
                     const std::vector<char>& flips, std::vector<char>& out) {
  if (flips.size() != graph.num_edges())
    throw std::invalid_argument("syndrome_bitmap: flips size mismatch");
  out.assign(static_cast<std::size_t>(graph.num_real_vertices()), 0);
  for (std::size_t e = 0; e < flips.size(); ++e) {
    if (!flips[e]) continue;
    const auto& edge = graph.edge(e);
    if (!graph.is_boundary(edge.u))
      out[static_cast<std::size_t>(edge.u)] ^= 1;
    if (!graph.is_boundary(edge.v))
      out[static_cast<std::size_t>(edge.v)] ^= 1;
  }
}

std::vector<int> syndrome_vertices(const DecodingGraph& graph,
                                   const std::vector<char>& flips) {
  const auto bitmap = syndrome_bitmap(graph, flips);
  std::vector<int> vertices;
  for (std::size_t v = 0; v < bitmap.size(); ++v)
    if (bitmap[v]) vertices.push_back(static_cast<int>(v));
  return vertices;
}

std::vector<char> erased_edges(const CodeLattice& lattice,
                               GraphKind kind,
                               const std::vector<char>& erased_qubits) {
  std::vector<char> erased;
  erased_edges(lattice, kind, erased_qubits, erased);
  return erased;
}

void erased_edges(const CodeLattice& lattice, GraphKind kind,
                  const std::vector<char>& erased_qubits,
                  std::vector<char>& out) {
  const DecodingGraph& graph = lattice.graph(kind);
  if (erased_qubits.size() != graph.num_edges())
    throw std::invalid_argument("erased_edges: flags size mismatch");
  out.assign(graph.num_edges(), 0);
  for (std::size_t e = 0; e < graph.num_edges(); ++e)
    out[e] =
        erased_qubits[static_cast<std::size_t>(graph.edge(e).data_qubit)];
}

}  // namespace surfnet::qec
