#include "qec/graph.h"

#include <algorithm>

namespace surfnet::qec {

DecodingGraph::DecodingGraph(int num_real, BoundaryIds boundary,
                             std::vector<GraphEdge> edges)
    : num_real_(num_real), boundary_(boundary), edges_(std::move(edges)) {
  if (num_real_ < 0) throw std::invalid_argument("negative vertex count");
  num_vertices_ = num_real_;
  num_vertices_ = std::max(num_vertices_, boundary_.first + 1);
  num_vertices_ = std::max(num_vertices_, boundary_.second + 1);
  for (const auto& e : edges_) {
    if (e.u < 0 || e.v < 0 || e.u >= num_vertices_ || e.v >= num_vertices_)
      throw std::invalid_argument("edge endpoint out of range");
    if (e.u == e.v) throw std::invalid_argument("self-loop edge");
  }
  offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const auto& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i)
    offsets_[i] += offsets_[i - 1];
  incidence_.resize(offsets_.back());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    incidence_[cursor[static_cast<std::size_t>(edges_[e].u)]++] =
        static_cast<int>(e);
    incidence_[cursor[static_cast<std::size_t>(edges_[e].v)]++] =
        static_cast<int>(e);
  }
}

}  // namespace surfnet::qec
