#pragma once

// Core/Support partition of a surface code (paper Sec. IV).
//
// Along every axis of a logical operator at least one high-fidelity data
// qubit prevents a logical error on that axis. The paper fixes the Core to
// a cross topology; each lattice layout implements its own central cross
// via CodeLattice::core_partition() — for the unrotated planar code the
// central column plus central row of site data qubits (2d-1 Core qubits,
// matching the paper's 7-of-25 distance-4 example).

#include "qec/code_lattice.h"

namespace surfnet::qec {

/// Convenience wrapper over CodeLattice::core_partition().
CoreSupportPartition make_core_support(const CodeLattice& lattice);

}  // namespace surfnet::qec
