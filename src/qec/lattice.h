#pragma once

// Unrotated planar surface code of odd or even distance d (paper Fig. 2(a)).
//
// The lattice lives on a (2d-1) x (2d-1) grid of sites:
//   * data qubits        at (even r, even c)  -> d*d of them, and
//                        at (odd r,  odd c)   -> (d-1)*(d-1) of them;
//     total d^2 + (d-1)^2 (13 for d=3, 25 for d=4 — matching the paper).
//   * measure-Z qubits   at (even r, odd c)   -> d*(d-1);
//   * measure-X qubits   at (odd r,  even c)  -> (d-1)*d.
//
// Each data qubit is exactly one edge in each of the two decoding graphs:
//   * the Z-graph (vertices = measure-Z) detects X-type components (X, Y)
//     and has WEST/EAST boundaries; a logical X is a west-east chain.
//   * the X-graph (vertices = measure-X) detects Z-type components (Z, Y)
//     and has NORTH/SOUTH boundaries; a logical Z is a north-south chain.

#include <vector>

#include "qec/code_lattice.h"
#include "util/contracts.h"
#include "qec/graph.h"

namespace surfnet::qec {

class SurfaceCodeLattice final : public CodeLattice {
 public:
  /// Build a distance-d lattice. Requires d >= 2.
  explicit SurfaceCodeLattice(int distance);

  int distance() const override { return d_; }
  int num_data_qubits() const override {
    return static_cast<int>(data_coords_.size());
  }
  int num_measure_z() const { return d_ * (d_ - 1); }
  int num_measure_x() const { return (d_ - 1) * d_; }

  /// Grid coordinate of a data qubit.
  Coord data_coord(int q) const override {
    SURFNET_EXPECTS(q >= 0 &&
                    static_cast<std::size_t>(q) < data_coords_.size());
    return data_coords_[static_cast<std::size_t>(q)];
  }

  /// Data qubit index at a grid coordinate; -1 when (r, c) is not a data site.
  int data_index(Coord rc) const;

  /// The two decoding graphs. Edge i in each graph carries `data_qubit`
  /// pointing back into [0, num_data_qubits()).
  const DecodingGraph& graph(GraphKind k) const override {
    return k == GraphKind::Z ? z_graph_ : x_graph_;
  }

  /// Data qubits forming a minimal cut that every logical-X (Z-graph) or
  /// logical-Z (X-graph) chain crosses an odd number of times. Used by the
  /// logical-error check.
  const std::vector<int>& logical_cut(GraphKind k) const override {
    return k == GraphKind::Z ? z_cut_ : x_cut_;
  }

  /// A representative logical operator: data qubits of one straight
  /// boundary-to-boundary chain (row r=0 for logical X, column c=0 for
  /// logical Z). Useful for tests.
  std::vector<int> logical_operator(GraphKind k) const override;

  /// Central cross of site data qubits: 2d-1 Core qubits (paper Sec. IV).
  CoreSupportPartition core_partition() const override;

 private:
  int d_;
  std::vector<Coord> data_coords_;
  std::vector<int> coord_to_data_;  // (2d-1)^2 grid, -1 where not data
  DecodingGraph z_graph_;
  DecodingGraph x_graph_;
  std::vector<int> z_cut_;
  std::vector<int> x_cut_;

  int side() const { return 2 * d_ - 1; }
};

}  // namespace surfnet::qec
