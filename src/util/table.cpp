#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace surfnet::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::pct(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (value * 100.0) << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace surfnet::util
