#include "util/stats.h"

#include <cmath>
#include <limits>

namespace surfnet::util {

double crossing_point(const double* xs, const double* ya, const double* yb,
                      std::size_t n) {
  if (n < 2) return std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double d0 = ya[i] - yb[i];
    const double d1 = ya[i + 1] - yb[i + 1];
    if (d0 == 0.0) return xs[i];
    if ((d0 < 0.0 && d1 >= 0.0) || (d0 > 0.0 && d1 <= 0.0)) {
      const double t = d0 / (d0 - d1);
      return xs[i] + t * (xs[i + 1] - xs[i]);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace surfnet::util
