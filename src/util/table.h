#pragma once

// Plain-text table rendering for the benchmark harnesses: each bench binary
// reprints the rows/series of a paper table or figure, so the output must be
// readable in a terminal and trivially diffable. Also supports CSV export.

#include <iosfwd>
#include <string>
#include <vector>

namespace surfnet::util {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string fmt(double value, int precision = 4);
  /// Format as percent, e.g. 0.0725 -> "7.25%".
  static std::string pct(double value, int precision = 2);

  /// Render with aligned columns and a separator under the header.
  void print(std::ostream& os) const;

  /// Render as CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace surfnet::util
