#include "util/contracts.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace surfnet::util {

namespace {

// The handler is process-global (contract failures are fatal events, not
// per-thread policy); atomic so TSan-clean when tests install handlers
// while worker threads run.
std::atomic<ContractHandler> g_handler{nullptr};

[[noreturn]] void default_handler(const ContractFailure& failure) {
  // Goes straight to stderr, not through obs: a contract failure must be
  // reportable even when no observability session exists, and the process
  // is about to die. lint: allow(stdio-in-src)
  std::fprintf(stderr, "surfnet: %s\n",
               format_contract_failure(failure).c_str());
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void dispatch(const ContractFailure& failure) {
  ContractHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) handler(failure);
  // Either no handler was installed or the installed one returned: a
  // violated contract never continues execution.
  default_handler(failure);
}

}  // namespace

std::string format_contract_failure(const ContractFailure& failure) {
  std::string out;
  out += failure.file;
  out += ':';
  out += std::to_string(failure.line);
  out += ": ";
  out += failure.kind;
  out += " failed: ";
  out += failure.expression;
  if (!failure.message.empty()) {
    out += " (";
    out += failure.message;
    out += ')';
  }
  return out;
}

ContractHandler set_contract_handler(ContractHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void throw_contract_violation(const ContractFailure& failure) {
  throw ContractViolation(failure);
}

void contract_fail(const char* kind, const char* expression, const char* file,
                   int line) {
  ContractFailure failure;
  failure.kind = kind;
  failure.expression = expression;
  failure.file = file;
  failure.line = line;
  dispatch(failure);
}

void contract_fail(const char* kind, const char* expression, const char* file,
                   int line, const char* format, ...) {
  ContractFailure failure;
  failure.kind = kind;
  failure.expression = expression;
  failure.file = file;
  failure.line = line;
  char buf[512];
  std::va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  failure.message = buf;
  dispatch(failure);
}

}  // namespace surfnet::util
