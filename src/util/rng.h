#pragma once

// Deterministic, seedable pseudo-random number generation for all stochastic
// components of SurfNet. Every simulation object takes an explicit 64-bit
// seed so that experiments are exactly reproducible.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
// It is small, fast, and of far higher quality than std::minstd; we avoid
// std::mt19937 mostly to keep the state compact, copyable and trivially
// serializable.

#include <array>
#include <cstdint>
#include <limits>

namespace surfnet::util {

/// SplitMix64 step: used for seeding and as a standalone mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xD1CEFEEDDEADBEEFULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection.
  std::uint64_t below(std::uint64_t n) {
    // Debiased multiply-shift (Lemire 2019).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Derive an independent child generator (for per-trial streams).
  Rng fork() { return Rng((*this)() ^ 0xA5A5A5A5A5A5A5A5ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace surfnet::util
