#pragma once

// Project-wide contract macros (the checking layer behind every validator
// in SurfNet):
//
//   SURFNET_ASSERT(cond, ...)   — internal invariant, mid-algorithm
//   SURFNET_EXPECTS(cond, ...)  — precondition at a module boundary
//   SURFNET_ENSURES(cond, ...)  — postcondition at a module boundary
//
// The optional trailing arguments are a printf-style context message
// ("index %d out of %d", i, n) attached to the failure report.
//
// All three are gated by the SURFNET_CHECKS compile definition (CMake
// option of the same name: ON in Debug/RelWithDebInfo and in CI, OFF in
// Release). When disabled the macros expand to an unevaluated-operand
// sizeof, so the condition and message arguments are type-checked and
// count as used — no -Wunused warnings — but generate zero code and never
// evaluate their operands.
//
// On failure the installed handler receives a ContractFailure describing
// file:line, the failed expression and the formatted context. The default
// handler prints the report to stderr and aborts; tests install a throwing
// handler (ScopedContractHandler + throw_contract_violation) to turn
// failures into catchable ContractViolation exceptions.

#include <stdexcept>
#include <string>

#ifndef SURFNET_CHECKS
#define SURFNET_CHECKS 0
#endif

namespace surfnet::util {

/// Everything known about one failed contract.
struct ContractFailure {
  const char* kind = "";        ///< "assertion", "precondition", ...
  const char* expression = "";  ///< stringified condition
  const char* file = "";
  int line = 0;
  std::string message;  ///< formatted context; empty when none given
};

/// Renders "file:line: kind failed: expr (message)".
std::string format_contract_failure(const ContractFailure& failure);

/// Thrown by throw_contract_violation (the test-friendly handler).
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const ContractFailure& failure)
      : std::logic_error(format_contract_failure(failure)) {}
};

/// A handler may throw to unwind (tests) or return to request the default
/// abort (so a handler cannot accidentally continue past a violation).
using ContractHandler = void (*)(const ContractFailure&);

/// Install a handler; returns the previous one. Passing nullptr restores
/// the default print-and-abort handler.
ContractHandler set_contract_handler(ContractHandler handler);

/// Ready-made handler that throws ContractViolation.
void throw_contract_violation(const ContractFailure& failure);

/// RAII handler installation for tests.
class ScopedContractHandler {
 public:
  explicit ScopedContractHandler(ContractHandler handler)
      : previous_(set_contract_handler(handler)) {}
  ~ScopedContractHandler() { set_contract_handler(previous_); }
  ScopedContractHandler(const ScopedContractHandler&) = delete;
  ScopedContractHandler& operator=(const ScopedContractHandler&) = delete;

 private:
  ContractHandler previous_;
};

/// Failure trampoline behind the macros. Never returns normally: either
/// the handler throws or the process aborts.
[[noreturn]] void contract_fail(const char* kind, const char* expression,
                                const char* file, int line);
[[noreturn]] __attribute__((format(printf, 5, 6))) void contract_fail(
    const char* kind, const char* expression, const char* file, int line,
    const char* format, ...);

namespace contracts_detail {

/// Declared, never defined: the disabled macros wrap their arguments in
/// sizeof(contract_sink(...)), an unevaluated operand, so the operands are
/// type-checked and "used" but cost nothing at runtime.
template <typename... Args>
int contract_sink(Args&&...);

}  // namespace contracts_detail
}  // namespace surfnet::util

#if SURFNET_CHECKS
#define SURFNET_CONTRACT_IMPL(kind, cond, ...)                            \
  ((cond) ? static_cast<void>(0)                                          \
          : ::surfnet::util::contract_fail(kind, #cond, __FILE__,         \
                                           __LINE__ __VA_OPT__(, ) __VA_ARGS__))
#else
#define SURFNET_CONTRACT_IMPL(kind, cond, ...)                       \
  static_cast<void>(sizeof(::surfnet::util::contracts_detail::contract_sink( \
      (cond)__VA_OPT__(, ) __VA_ARGS__)))
#endif

#define SURFNET_ASSERT(cond, ...) \
  SURFNET_CONTRACT_IMPL("assertion", cond __VA_OPT__(, ) __VA_ARGS__)
#define SURFNET_EXPECTS(cond, ...) \
  SURFNET_CONTRACT_IMPL("precondition", cond __VA_OPT__(, ) __VA_ARGS__)
#define SURFNET_ENSURES(cond, ...) \
  SURFNET_CONTRACT_IMPL("postcondition", cond __VA_OPT__(, ) __VA_ARGS__)
