#pragma once

// Small online-statistics helpers used by the benchmark harnesses to report
// means and confidence intervals over Monte-Carlo trials.

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace surfnet::util {

/// Welford online accumulator for mean / variance / standard error.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Unbiased sample variance.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  double stderr_mean() const {
    return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  /// Half-width of the ~95% normal confidence interval.
  double ci95() const { return 1.96 * stderr_mean(); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Binomial proportion accumulator (success counts), with Wilson interval.
class Proportion {
 public:
  void add(bool success) {
    ++n_;
    if (success) ++k_;
  }
  void add_many(std::size_t successes, std::size_t trials) {
    k_ += successes;
    n_ += trials;
  }

  std::size_t trials() const { return n_; }
  std::size_t successes() const { return k_; }

  double value() const {
    return n_ ? static_cast<double>(k_) / static_cast<double>(n_) : 0.0;
  }

  /// Wilson score interval half-width at 95%.
  double ci95() const {
    if (n_ == 0) return 0.0;
    const double z = 1.96;
    const double n = static_cast<double>(n_);
    const double p = value();
    return z * std::sqrt(p * (1.0 - p) / n + z * z / (4 * n * n)) /
           (1.0 + z * z / n);
  }

 private:
  std::size_t n_ = 0;
  std::size_t k_ = 0;
};

/// Linear interpolation of the crossing point where series a and b intersect:
/// given matching x values and y values, returns the x where (a-b) changes
/// sign, or NaN when they never cross. Used to estimate decoder thresholds.
double crossing_point(const double* xs, const double* ya, const double* yb,
                      std::size_t n);

}  // namespace surfnet::util
