#include "core/surfnet.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include "decoder/surfnet_decoder.h"
#include "netsim/schedule.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/incremental.h"
#include "routing/purification.h"
#include "routing/router.h"
#include "util/rng.h"

namespace surfnet::core {

std::string_view to_string(FacilityLevel level) {
  switch (level) {
    case FacilityLevel::Abundant: return "abundant";
    case FacilityLevel::Sufficient: return "sufficient";
    case FacilityLevel::Insufficient: return "insufficient";
  }
  return "?";
}

std::string_view to_string(ConnectionQuality quality) {
  return quality == ConnectionQuality::Good ? "good" : "poor";
}

ScenarioParams make_scenario(FacilityLevel level, ConnectionQuality quality) {
  ScenarioParams params;

  switch (level) {
    case FacilityLevel::Abundant:
      params.topology.num_nodes = 26;
      params.topology.num_servers = 5;
      params.topology.num_switches = 10;
      params.topology.storage_capacity = 250;
      params.topology.entanglement_capacity = 80;
      params.simulation.entanglement_rate = 6.0;
      break;
    case FacilityLevel::Sufficient:
      params.topology.num_nodes = 24;
      params.topology.num_servers = 3;
      params.topology.num_switches = 8;
      params.topology.storage_capacity = 120;
      params.topology.entanglement_capacity = 40;
      params.simulation.entanglement_rate = 4.0;
      break;
    case FacilityLevel::Insufficient:
      params.topology.num_nodes = 22;
      params.topology.num_servers = 2;
      params.topology.num_switches = 6;
      params.topology.storage_capacity = 60;
      params.topology.entanglement_capacity = 15;
      params.simulation.entanglement_rate = 2.0;
      break;
  }
  params.topology.attach_edges = 2;
  params.topology.fidelity_lo =
      (quality == ConnectionQuality::Good) ? 0.75 : 0.5;
  params.topology.fidelity_hi = 1.0;

  // Noise thresholds trade fidelity for throughput (paper Fig. 6(b.4)); on
  // poor fibers they are relaxed so every design executes a comparable
  // share of requests (the Fig. 7 similar-throughput configuration).
  if (quality == ConnectionQuality::Poor) {
    params.routing.core_noise_threshold = 0.45;
    params.routing.total_noise_threshold = 0.55;
    params.routing.ec_reduction = 0.2;
  }

  // The paper's distance-4 example code: 25 data qubits, 7-qubit Core.
  params.simulation.code_distance = 4;
  params.routing.core_qubits = 7;
  params.routing.support_qubits = 18;
  return params;
}

TrialMetrics run_trial(const ScenarioParams& params, NetworkDesign design,
                       std::uint64_t seed) {
  return run_trial(params, design, seed, obs::Sink{});
}

TrialMetrics run_trial(const ScenarioParams& params, NetworkDesign design,
                       std::uint64_t seed, const obs::Sink& sink,
                       SimEngine engine) {
  util::Rng rng(seed);
  const auto topology = netsim::make_random_topology(params.topology, rng);
  const auto requests = netsim::random_requests(
      topology, params.num_requests, params.max_codes_per_request, rng);

  netsim::SimulationParams simulation = params.simulation;
  simulation.sink = sink;

  netsim::Schedule schedule;
  switch (design) {
    case NetworkDesign::SurfNet:
    case NetworkDesign::Raw: {
      routing::RoutingParams routing = params.routing;
      routing.dual_channel = design == NetworkDesign::SurfNet;
      routing.sink = sink;
      // The facade's Auto strategy owns the LP-with-greedy-fallback seam
      // (and the "route.greedy_fallbacks" counter) that used to live here.
      auto routed = routing::route(topology, requests, routing, rng);
      schedule = std::move(routed.schedule);
      break;
    }
    case NetworkDesign::Purification1:
    case NetworkDesign::Purification2:
    case NetworkDesign::Purification9: {
      routing::PurificationParams purification;
      purification.extra_pairs = netsim::purification_rounds(design);
      // All designs share the same per-fiber pair budget; a message costs
      // (1 + N) pairs per hop here versus n Core qubits per hop in
      // SurfNet, which keeps throughput comparable (Fig. 7 methodology).
      purification.budget_scale = 1.0;
      schedule =
          routing::route_purification(topology, requests, purification, rng);
      break;
    }
  }

  const decoder::SurfNetDecoder dec;
  const auto simulator = netsim::make_simulator(design, dec, engine);
  const auto sim = simulator->run(topology, schedule, simulation, rng);

  TrialMetrics metrics;
  metrics.fidelity = sim.fidelity();
  metrics.latency = sim.avg_latency();
  metrics.throughput = schedule.throughput();
  metrics.codes_scheduled = sim.codes_scheduled;
  metrics.codes_delivered = sim.codes_delivered;
  return metrics;
}

namespace {

AggregateMetrics aggregate_in_order(const std::vector<TrialMetrics>& all) {
  AggregateMetrics aggregate;
  for (const auto& metrics : all) {
    // Fidelity/latency are averages over executed communications; trials
    // that executed nothing contribute throughput only.
    if (metrics.codes_delivered > 0) {
      aggregate.fidelity.add(metrics.fidelity);
      aggregate.latency.add(metrics.latency);
    }
    aggregate.throughput.add(metrics.throughput);
  }
  return aggregate;
}

}  // namespace

AggregateMetrics run_trials(const ScenarioParams& params,
                            NetworkDesign design, int trials,
                            const RunOptions& options) {
  if (trials < 0) throw std::invalid_argument("negative trial count");
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(trials));
  util::Rng seeder(options.seed);
  for (auto& s : seeds) s = seeder();

  // Each trial records into private buffers; the merge below runs in trial
  // order, so metrics and traces do not depend on the worker count.
  std::vector<obs::TraceBuffer> traces;
  std::vector<obs::MetricsRegistry> registries;
  if (options.sink.trace) traces.resize(static_cast<std::size_t>(trials));
  if (options.sink.metrics)
    registries.resize(static_cast<std::size_t>(trials));

  auto trial_sink = [&](std::size_t t) {
    obs::Sink sink;
    if (options.sink.metrics) sink.metrics = &registries[t];
    if (options.sink.trace) sink.trace = &traces[t];
    return sink;
  };

  std::vector<TrialMetrics> results(static_cast<std::size_t>(trials));
  const int workers =
      std::max(1, std::min(options.threads, trials > 0 ? trials : 1));
  if (workers == 1) {
    for (int t = 0; t < trials; ++t) {
      const auto i = static_cast<std::size_t>(t);
      results[i] =
          run_trial(params, design, seeds[i], trial_sink(i), options.engine);
    }
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (int t = w; t < trials; t += workers) {
          const auto i = static_cast<std::size_t>(t);
          results[i] = run_trial(params, design, seeds[i], trial_sink(i),
                                 options.engine);
        }
      });
    }
    for (auto& th : pool) th.join();
  }

  if (options.sink.metrics)
    for (const auto& registry : registries)
      options.sink.metrics->merge(registry);
  if (options.sink.trace)
    for (std::size_t t = 0; t < traces.size(); ++t)
      traces[t].flush_to(*options.sink.trace, static_cast<std::int32_t>(t));
  return aggregate_in_order(results);
}

TrafficScenario make_traffic_scenario(FacilityLevel level,
                                      ConnectionQuality quality) {
  const ScenarioParams batch = make_scenario(level, quality);
  TrafficScenario scenario;
  scenario.topology = batch.topology;
  scenario.routing = batch.routing;
  scenario.routing.dual_channel = true;
  scenario.workload.process = netsim::ArrivalProcess::Poisson;
  scenario.workload.arrival_rate = 0.25;
  scenario.workload.horizon_slots = 2000;
  scenario.workload.warmup_slots = 200;
  scenario.workload.reoptimize_every = 64;
  return scenario;
}

netsim::TrafficResult run_traffic_trial(const TrafficScenario& scenario,
                                        std::uint64_t seed,
                                        const obs::Sink& sink,
                                        SimEngine engine) {
  util::Rng rng(seed);
  const auto topology =
      netsim::make_random_topology(scenario.topology, rng);

  routing::RoutingParams routing = scenario.routing;
  routing.sink = sink;
  routing::IncrementalRouter provider(topology, routing);

  netsim::WorkloadParams workload = scenario.workload;
  workload.sink = sink;
  return netsim::run_traffic(topology, provider, workload, rng, engine);
}

AggregateTraffic run_trials(const TrafficScenario& scenario, int trials,
                            const RunOptions& options) {
  if (trials < 0) throw std::invalid_argument("negative trial count");
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(trials));
  util::Rng seeder(options.seed);
  for (auto& s : seeds) s = seeder();

  // Same discipline as the batch overload: private per-trial buffers,
  // merged in trial order after the workers join.
  std::vector<obs::TraceBuffer> traces;
  std::vector<obs::MetricsRegistry> registries;
  if (options.sink.trace) traces.resize(static_cast<std::size_t>(trials));
  if (options.sink.metrics)
    registries.resize(static_cast<std::size_t>(trials));

  auto trial_sink = [&](std::size_t t) {
    obs::Sink sink;
    if (options.sink.metrics) sink.metrics = &registries[t];
    if (options.sink.trace) sink.trace = &traces[t];
    return sink;
  };

  std::vector<netsim::TrafficResult> results(
      static_cast<std::size_t>(trials));
  const int workers =
      std::max(1, std::min(options.threads, trials > 0 ? trials : 1));
  if (workers == 1) {
    for (int t = 0; t < trials; ++t) {
      const auto i = static_cast<std::size_t>(t);
      results[i] =
          run_traffic_trial(scenario, seeds[i], trial_sink(i),
                            options.engine);
    }
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (int t = w; t < trials; t += workers) {
          const auto i = static_cast<std::size_t>(t);
          results[i] = run_traffic_trial(scenario, seeds[i], trial_sink(i),
                                         options.engine);
        }
      });
    }
    for (auto& th : pool) th.join();
  }

  if (options.sink.metrics)
    for (const auto& registry : registries)
      options.sink.metrics->merge(registry);
  if (options.sink.trace)
    for (std::size_t t = 0; t < traces.size(); ++t)
      traces[t].flush_to(*options.sink.trace, static_cast<std::int32_t>(t));

  AggregateTraffic aggregate;
  for (const auto& r : results) {
    aggregate.admitted_per_slot.add(r.admitted_per_slot());
    if (r.measured_arrivals > 0)
      aggregate.blocking_probability.add(r.blocking_probability());
    if (r.latency_count > 0) {
      aggregate.p50_latency.add(r.latency_percentile(0.50));
      aggregate.p99_latency.add(r.latency_percentile(0.99));
    }
  }
  return aggregate;
}

}  // namespace surfnet::core
