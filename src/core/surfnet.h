#pragma once

// SurfNet public facade: one-call end-to-end experiments.
//
// A trial generates a random Barabasi-Albert network and a batch of
// communication requests, schedules them with the selected network
// design's routing protocol (paper Sec. V-A / VI-B), executes the schedule
// on the round-based simulator (Sec. V-B), and reports the paper's three
// metrics (Sec. VI-C): fidelity (success rate of executed communications),
// latency (average slots per communication), and throughput (executed /
// requested communications).

#include <cstdint>
#include <string_view>

#include "netsim/simulator.h"
#include "netsim/topology.h"
#include "routing/formulation.h"
#include "util/stats.h"

namespace surfnet::core {

/// The three facility scenarios of Fig. 6(a) / Fig. 7.
enum class FacilityLevel { Abundant, Sufficient, Insufficient };

/// Fiber-quality scenarios: good = gamma in [0.75, 1], poor = [0.5, 1].
enum class ConnectionQuality { Good, Poor };

/// The five network designs compared in Fig. 7.
enum class NetworkDesign {
  SurfNet,
  Raw,
  Purification1,
  Purification2,
  Purification9,
};

std::string_view to_string(FacilityLevel level);
std::string_view to_string(ConnectionQuality quality);
std::string_view to_string(NetworkDesign design);

/// Everything one trial needs. Produced by make_scenario and then freely
/// overridden for the Fig. 6(b) parameter sweeps.
struct ScenarioParams {
  netsim::TopologySpec topology;
  int num_requests = 6;
  int max_codes_per_request = 3;
  routing::RoutingParams routing;
  netsim::SimulationParams simulation;
};

/// Default parameters for a (facility, connection) scenario. The surface
/// code is the paper's distance-4 example (25 qubits, 7 Core).
ScenarioParams make_scenario(FacilityLevel level, ConnectionQuality quality);

struct TrialMetrics {
  double fidelity = 0.0;
  double latency = 0.0;
  double throughput = 0.0;
  int codes_scheduled = 0;
  int codes_delivered = 0;
};

/// Run one seeded trial of a design.
TrialMetrics run_trial(const ScenarioParams& params, NetworkDesign design,
                       std::uint64_t seed);

struct AggregateMetrics {
  util::RunningStat fidelity;
  util::RunningStat latency;
  util::RunningStat throughput;
};

/// Run `trials` independent seeded trials and aggregate.
AggregateMetrics run_trials(const ScenarioParams& params,
                            NetworkDesign design, int trials,
                            std::uint64_t seed);

/// Same trials, fanned out over `threads` worker threads. Per-trial seeds
/// are identical to the sequential version and results are merged in
/// trial order, so the aggregate matches run_trials exactly.
AggregateMetrics run_trials_parallel(const ScenarioParams& params,
                                     NetworkDesign design, int trials,
                                     std::uint64_t seed, int threads);

}  // namespace surfnet::core
