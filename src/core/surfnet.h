#pragma once

// SurfNet public facade: one-call end-to-end experiments.
//
// A trial generates a random Barabasi-Albert network and a batch of
// communication requests, schedules them with the selected network
// design's routing protocol (paper Sec. V-A / VI-B), executes the schedule
// on the round-based simulator (Sec. V-B), and reports the paper's three
// metrics (Sec. VI-C): fidelity (success rate of executed communications),
// latency (average slots per communication), and throughput (executed /
// requested communications).
//
// The batch entry point is run_trials(params, design, trials, RunOptions):
// RunOptions bundles the base seed, the worker-thread count, and an
// observability sink. Per-trial seeds are fixed up front and results are
// merged in trial order, so aggregates — and, with a sink attached, the
// exported metrics and the event trace — are bitwise-identical for any
// thread count.
//
// Dynamic traffic: TrafficScenario + run_traffic_trial / run_trials run
// an open-loop arrival/departure stream (netsim/workload.h) against an
// incremental warm-started router (routing/incremental.h) instead of a
// fixed request batch, with the same seed-derivation and trial-ordered
// merge discipline.

#include <cstdint>
#include <string_view>

#include "netsim/event_simulator.h"
#include "netsim/simulator.h"
#include "netsim/topology.h"
#include "netsim/workload.h"
#include "obs/sink.h"
#include "routing/formulation.h"
#include "util/stats.h"

namespace surfnet::core {

/// The three facility scenarios of Fig. 6(a) / Fig. 7.
enum class FacilityLevel { Abundant, Sufficient, Insufficient };

/// Fiber-quality scenarios: good = gamma in [0.75, 1], poor = [0.5, 1].
enum class ConnectionQuality { Good, Poor };

/// The five network designs compared in Fig. 7 (defined next to the
/// simulators that execute them; re-exported here for the facade API).
using netsim::NetworkDesign;

/// Simulation engine selection (netsim/event_simulator.h). Both engines
/// compute the identical function — same results, traces, metrics, RNG
/// stream — so this only chooses the execution strategy: Event is
/// activity-proportional, Slot is the dense differential oracle.
using netsim::SimEngine;

std::string_view to_string(FacilityLevel level);
std::string_view to_string(ConnectionQuality quality);
using netsim::to_string;

/// Everything one trial needs. Produced by make_scenario and then freely
/// overridden for the Fig. 6(b) parameter sweeps.
struct ScenarioParams {
  netsim::TopologySpec topology;
  int num_requests = 6;
  int max_codes_per_request = 3;
  routing::RoutingParams routing;
  netsim::SimulationParams simulation;
};

/// Default parameters for a (facility, connection) scenario. The surface
/// code is the paper's distance-4 example (25 qubits, 7 Core).
ScenarioParams make_scenario(FacilityLevel level, ConnectionQuality quality);

struct TrialMetrics {
  double fidelity = 0.0;
  double latency = 0.0;
  double throughput = 0.0;
  int codes_scheduled = 0;
  int codes_delivered = 0;
};

/// Run one seeded trial of a design.
TrialMetrics run_trial(const ScenarioParams& params, NetworkDesign design,
                       std::uint64_t seed);

/// Observed variant: the sink is handed down into the routing protocol
/// (LP solve metrics/events) and the simulator (per-slot events). A null
/// sink behaves exactly like the overload above. `engine` picks the
/// simulation engine; the default (Event) and Slot produce bitwise-equal
/// trials.
TrialMetrics run_trial(const ScenarioParams& params, NetworkDesign design,
                       std::uint64_t seed, const obs::Sink& sink,
                       SimEngine engine = SimEngine::Event);

struct AggregateMetrics {
  util::RunningStat fidelity;
  util::RunningStat latency;
  util::RunningStat throughput;
};

/// How a batch of trials runs.
struct RunOptions {
  std::uint64_t seed = 20240607;  ///< base of the per-trial seed sequence
  int threads = 1;                ///< worker threads (clamped to [1, trials])
  /// Simulation engine for every trial. Slot and Event runs are
  /// bitwise-identical; Event is asymptotically cheaper on sparse runs.
  SimEngine engine = SimEngine::Event;
  /// Observability handle. Each trial records into private buffers that are
  /// merged into this sink in trial order after the workers join, so both
  /// the metrics document and the trace are thread-count invariant.
  obs::Sink sink{};
};

/// Run `trials` independent seeded trials and aggregate. Per-trial seeds
/// derive from options.seed alone, and per-trial results are merged in
/// trial order: the aggregate (and any observability output) is identical
/// for every options.threads value.
AggregateMetrics run_trials(const ScenarioParams& params,
                            NetworkDesign design, int trials,
                            const RunOptions& options = {});

/// One dynamic-traffic experiment: a random topology, an incremental
/// warm-started router over it, and an open-loop workload stream.
struct TrafficScenario {
  netsim::TopologySpec topology;
  routing::RoutingParams routing;
  netsim::WorkloadParams workload;
};

/// Traffic defaults for a (facility, connection) scenario: the batch
/// scenario's topology and routing, a Poisson stream sized to keep the
/// network busy without saturating it, and a short warm-up.
TrafficScenario make_traffic_scenario(FacilityLevel level,
                                      ConnectionQuality quality);

/// Run one seeded traffic trial. The sink observes the workload stream
/// (arrival/admit/blocked/depart events, "traffic.*" counters) and every
/// LP solve of the incremental router; engine Slot and Event produce
/// bitwise-identical results.
netsim::TrafficResult run_traffic_trial(const TrafficScenario& scenario,
                                        std::uint64_t seed,
                                        const obs::Sink& sink = {},
                                        SimEngine engine = SimEngine::Event);

struct AggregateTraffic {
  util::RunningStat admitted_per_slot;
  util::RunningStat blocking_probability;
  util::RunningStat p50_latency;
  util::RunningStat p99_latency;
};

/// Traffic batch runner with the ScenarioParams overload's determinism
/// contract: per-trial seeds derive from options.seed alone and per-trial
/// observability buffers are merged in trial order, so the aggregate, the
/// metrics document and the trace are identical for every options.threads
/// value and both engines.
AggregateTraffic run_trials(const TrafficScenario& scenario, int trials,
                            const RunOptions& options = {});

}  // namespace surfnet::core
